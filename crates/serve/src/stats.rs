//! Service-level telemetry: throughput, latency quantiles, cache and
//! memory counters.
//!
//! Latency is recorded into a log₂-spaced histogram over microseconds
//! (64 buckets cover sub-µs to ~584 000 years, so no request ever falls
//! off the end). Quantiles are read as the geometric midpoint of the
//! bucket containing the target rank — at most a 2× slack on an
//! individual quantile, which is plenty for regression gating and avoids
//! keeping every sample.

use fhe_conc::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::cache::CacheStats;
use crate::session::SessionStats;
use fhe_ckks::PoolStats;

const BUCKETS: usize = 64;

/// Lock-free log₂-spaced latency histogram (microsecond resolution).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.leading_zeros()).min(BUCKETS as u32 - 1) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_us.load(Ordering::Relaxed) / n)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us.load(Ordering::Relaxed))
    }

    /// The latency at quantile `q` in `[0, 1]`: the geometric midpoint of
    /// the bucket holding the `⌈q·n⌉`-th sample (zero when empty).
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i holds samples in [2^(i-1), 2^i) µs (bucket 0 is
                // exactly 0 µs); report the geometric midpoint.
                if i == 0 {
                    return Duration::ZERO;
                }
                let lo = 1u64 << (i - 1);
                let mid_us = (lo as f64) * std::f64::consts::SQRT_2;
                return Duration::from_secs_f64(mid_us / 1e6);
            }
        }
        self.max()
    }
}

/// One shared polynomial pool's counters, tagged with its limb degree.
#[derive(Debug, Clone, Copy)]
pub struct PoolSnapshot {
    /// Polynomial degree `N` of the pool's buffers.
    pub degree: usize,
    /// The pool's counters (exact; atomically maintained).
    pub stats: PoolStats,
}

/// A point-in-time snapshot of the whole service.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests completed (successes and failures).
    pub requests: u64,
    /// Requests that returned a [`crate::ServeError`].
    pub failed: u64,
    /// Completed requests per second of server uptime.
    pub requests_per_sec: f64,
    /// Median end-to-end latency (queue wait + execution).
    pub p50_latency: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: Duration,
    /// Mean end-to-end latency.
    pub mean_latency: Duration,
    /// Compile-cache counters.
    pub cache: CacheStats,
    /// Per-degree shared polynomial pools, ordered by degree.
    pub pools: Vec<PoolSnapshot>,
    /// Per-session counters, ordered by session id.
    pub sessions: Vec<SessionStats>,
}

impl ServeStats {
    /// Maximum of [`SessionStats::peak_bytes`] across all sessions: the
    /// highest shared-pool + key-bytes watermark any completed request
    /// observed. Pool bytes are pool-global (the pool is shared across
    /// sessions), so this is a service-wide memory peak, not a sum or
    /// attribution of per-session footprints.
    pub fn peak_bytes(&self) -> u64 {
        self.sessions
            .iter()
            .map(|s| s.peak_bytes)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = LatencyHistogram::new();
        for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // p50 lands in the 1 ms bucket (within 2× geometric slack), p99 in
        // the 100 ms bucket.
        assert!(p50 >= Duration::from_micros(500) && p50 <= Duration::from_millis(2));
        assert!(p99 >= Duration::from_millis(50) && p99 <= Duration::from_millis(200));
        assert!(h.max() == Duration::from_millis(100));
        assert!(h.mean() >= Duration::from_millis(10));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }
}
