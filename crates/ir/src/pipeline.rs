//! The instrumented pass-pipeline architecture shared by every compiler.
//!
//! Every scale-management compiler in the workspace (the reserve compiler,
//! EVA, Hecate) is a named sequence of [`Pass`]es executed by a
//! [`PassManager`]. The manager records per-pass wall time, op-count and
//! level deltas, and diagnostics into a [`PipelineTrace`], so each
//! compiler's internal phases are observable without touching its
//! algorithms — and so the paper's Table 4 columns (scale-management time
//! vs total time) fall out of the trace instead of hand-rolled `Instant`
//! bookkeeping.
//!
//! The compilers themselves are unified behind [`ScaleCompiler`]: one trait
//! method compiles a [`Program`] under [`CompileParams`] into a
//! [`Compiled`] artifact carrying the schedule plus a [`CompileReport`]
//! with identical fields for every compiler. Benches, tests and tools
//! iterate `&[&dyn ScaleCompiler]` — adding a compiler is one trait impl
//! and zero harness changes.
//!
//! # Example
//!
//! A two-pass pipeline over closures:
//!
//! ```
//! use fhe_ir::pipeline::{PassCx, PassIr, PassKind, PassManager};
//! use fhe_ir::{passes, Builder, CompileParams, CostModel};
//!
//! let b = Builder::new("t", 4);
//! let x = b.input("x");
//! let p = b.finish(vec![x.clone() * x.clone() + x.clone() * x]);
//!
//! let mut cx = PassCx::new(CompileParams::new(20), CostModel::paper_table3());
//! let mut pm = PassManager::new()
//!     .with_fn("cleanup", PassKind::Cleanup, |ir, _cx| {
//!         Ok(PassIr::Source(passes::cleanup(ir.program())))
//!     })
//!     .with_fn("count", PassKind::Analysis, |ir, cx| {
//!         cx.note(format!("{} ops survive", ir.num_ops()));
//!         Ok(ir)
//!     });
//! let (ir, trace) = pm.run(PassIr::Source(p), &mut cx).unwrap();
//! assert_eq!(trace.passes.len(), 2);
//! assert!(trace.passes[0].ops_after < trace.passes[0].ops_before);
//! assert!(ir.num_ops() > 0);
//! ```

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use crate::cost::CostModel;
use crate::diag::{Finding, TvVerdict};
use crate::params::CompileParams;
use crate::program::Program;
use crate::schedule::ScheduledProgram;

/// The IR a pass consumes and produces: a source program before scale
/// management, or a scheduled program after rescale placement.
#[derive(Debug, Clone)]
pub enum PassIr {
    /// Arithmetic program without scale-management ops.
    Source(Program),
    /// Compiled program with scale management and input encodings.
    Scheduled(ScheduledProgram),
}

impl PassIr {
    /// The underlying program, whichever stage the IR is at.
    pub fn program(&self) -> &Program {
        match self {
            PassIr::Source(p) => p,
            PassIr::Scheduled(s) => &s.program,
        }
    }

    /// Op count of the underlying program.
    pub fn num_ops(&self) -> usize {
        self.program().num_ops()
    }

    /// The maximum ciphertext level, once the IR is scheduled and legal.
    pub fn max_level(&self) -> Option<u32> {
        match self {
            PassIr::Source(_) => None,
            PassIr::Scheduled(s) => s.validate().ok().map(|m| m.max_level()),
        }
    }

    /// Unwraps the source program, or errors in the named pass.
    ///
    /// # Errors
    ///
    /// Fails when the IR has already been scheduled.
    pub fn try_source(self, pass: &str) -> Result<Program, PassError> {
        match self {
            PassIr::Source(p) => Ok(p),
            PassIr::Scheduled(_) => Err(PassError::new(
                pass,
                "expected a source program, found a scheduled program",
            )),
        }
    }

    /// Unwraps the scheduled program, or errors in the named pass.
    ///
    /// # Errors
    ///
    /// Fails when the IR has not been scheduled yet.
    pub fn try_scheduled(self, pass: &str) -> Result<ScheduledProgram, PassError> {
        match self {
            PassIr::Scheduled(s) => Ok(s),
            PassIr::Source(_) => Err(PassError::new(
                pass,
                "expected a scheduled program, found a source program",
            )),
        }
    }
}

/// What a pass contributes to; drives the [`PipelineTrace`] time split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Pre-scale-management cleanup (CSE/DCE/folding).
    Cleanup,
    /// Pure analysis: computes artifacts, does not rewrite the IR.
    Analysis,
    /// Scale management proper — counted in the paper's "SM time" column.
    ScaleManagement,
    /// Verification (type checking, schedule validation).
    Check,
}

impl PassKind {
    /// Short label used in trace renderings.
    pub fn label(self) -> &'static str {
        match self {
            PassKind::Cleanup => "cleanup",
            PassKind::Analysis => "analysis",
            PassKind::ScaleManagement => "scale-mgmt",
            PassKind::Check => "check",
        }
    }
}

/// A pass failed; carries per-diagnostic detail.
#[derive(Debug, Clone)]
pub struct PassError {
    /// The pass that failed.
    pub pass: String,
    /// One entry per violated constraint or failure reason.
    pub diagnostics: Vec<String>,
}

impl PassError {
    /// A single-diagnostic error.
    pub fn new(pass: impl Into<String>, diagnostic: impl Into<String>) -> Self {
        PassError {
            pass: pass.into(),
            diagnostics: vec![diagnostic.into()],
        }
    }

    /// An error from a list of diagnostics (e.g. type errors).
    pub fn with_diagnostics<D: fmt::Debug>(pass: impl Into<String>, errs: &[D]) -> Self {
        PassError {
            pass: pass.into(),
            diagnostics: errs.iter().map(|e| format!("{e:?}")).collect(),
        }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pass `{}` failed: {} diagnostic(s)",
            self.pass,
            self.diagnostics.len()
        )?;
        if let Some(first) = self.diagnostics.first() {
            write!(f, "; first: {first}")?;
        }
        Ok(())
    }
}

impl std::error::Error for PassError {}

/// Shared state threaded through a pipeline run: compilation parameters,
/// the cost model, cross-pass artifacts, and instrumentation counters.
#[derive(Debug)]
pub struct PassCx {
    /// RNS-CKKS compilation parameters (waterline, `R`, max level).
    pub params: CompileParams,
    /// Latency model passes may consult (ordering, hoisting, scoring).
    pub cost_model: CostModel,
    /// Candidate plans evaluated (Hecate's `# Iters`; 1 for direct
    /// compilers). Passes add to it via [`PassCx::add_iterations`].
    pub iterations: usize,
    /// Rescale hoists applied (reserve pipeline; 0 elsewhere).
    pub hoists: usize,
    notes: Vec<String>,
    findings: Vec<Finding>,
    artifacts: HashMap<TypeId, Box<dyn Any>>,
}

impl PassCx {
    /// A fresh context with zeroed counters and an empty blackboard.
    pub fn new(params: CompileParams, cost_model: CostModel) -> Self {
        PassCx {
            params,
            cost_model,
            iterations: 0,
            hoists: 0,
            notes: Vec::new(),
            findings: Vec::new(),
            artifacts: HashMap::new(),
        }
    }

    /// Attaches a diagnostic note to the currently running pass's record.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Records a lint finding, surfaced in the final
    /// [`CompileReport::findings`].
    pub fn finding(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Findings recorded so far across all passes.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Counts candidate plans evaluated by the current pass.
    pub fn add_iterations(&mut self, n: usize) {
        self.iterations += n;
    }

    /// Stores a cross-pass artifact, keyed by type (e.g. an allocation
    /// order or a reserve solution). Replaces any previous value of `T`.
    pub fn put<T: Any>(&mut self, artifact: T) {
        self.artifacts.insert(TypeId::of::<T>(), Box::new(artifact));
    }

    /// Borrows a previously stored artifact.
    pub fn get<T: Any>(&self) -> Option<&T> {
        self.artifacts
            .get(&TypeId::of::<T>())
            .and_then(|a| a.downcast_ref())
    }

    /// Removes and returns a previously stored artifact.
    pub fn take<T: Any>(&mut self) -> Option<T> {
        self.artifacts
            .remove(&TypeId::of::<T>())
            .and_then(|a| a.downcast().ok())
            .map(|b| *b)
    }
}

/// One compiler phase: a named transformation over [`PassIr`].
pub trait Pass {
    /// The pass's name as shown in traces (e.g. `"alloc"`, `"hoist"`).
    fn name(&self) -> &str;

    /// What the pass's time is attributed to.
    fn kind(&self) -> PassKind {
        PassKind::ScaleManagement
    }

    /// Runs the pass.
    ///
    /// # Errors
    ///
    /// Implementations fail with a [`PassError`] naming themselves.
    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError>;
}

struct FnPass<F> {
    name: String,
    kind: PassKind,
    f: F,
}

impl<F> Pass for FnPass<F>
where
    F: FnMut(PassIr, &mut PassCx) -> Result<PassIr, PassError>,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> PassKind {
        self.kind
    }

    fn run(&mut self, ir: PassIr, cx: &mut PassCx) -> Result<PassIr, PassError> {
        (self.f)(ir, cx)
    }
}

/// Instrumentation record of one executed pass.
#[derive(Debug, Clone)]
pub struct PassRecord {
    /// Pass name.
    pub name: String,
    /// Time attribution class.
    pub kind: PassKind,
    /// Wall time of the pass body.
    pub wall: Duration,
    /// Op count entering the pass.
    pub ops_before: usize,
    /// Op count leaving the pass.
    pub ops_after: usize,
    /// Max ciphertext level entering the pass (`None` before scheduling).
    pub max_level_before: Option<u32>,
    /// Max ciphertext level leaving the pass (`None` before scheduling).
    pub max_level_after: Option<u32>,
    /// Diagnostics the pass attached via [`PassCx::note`].
    pub notes: Vec<String>,
}

impl PassRecord {
    /// Deterministic one-line rendering (no wall time) for golden tests.
    pub fn summary(&self) -> String {
        let lvl = |l: Option<u32>| l.map_or_else(|| "-".to_string(), |v| v.to_string());
        let mut line = format!(
            "{} [{}]: ops {} -> {}, level {} -> {}",
            self.name,
            self.kind.label(),
            self.ops_before,
            self.ops_after,
            lvl(self.max_level_before),
            lvl(self.max_level_after),
        );
        for note in &self.notes {
            line.push_str(&format!("\n  note: {note}"));
        }
        line
    }
}

/// The instrumentation a [`PassManager`] run produces: one record per pass.
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    /// Executed passes, in order.
    pub passes: Vec<PassRecord>,
}

impl PipelineTrace {
    /// Total wall time across all passes.
    pub fn total_time(&self) -> Duration {
        self.passes.iter().map(|p| p.wall).sum()
    }

    /// Wall time of scale-management passes only (the paper's "SM time").
    pub fn scale_management_time(&self) -> Duration {
        self.passes
            .iter()
            .filter(|p| p.kind == PassKind::ScaleManagement)
            .map(|p| p.wall)
            .sum()
    }

    /// The record for a named pass, if it ran.
    pub fn pass(&self, name: &str) -> Option<&PassRecord> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// Deterministic multi-line rendering (no wall times) for golden tests.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for p in &self.passes {
            out.push_str(&p.summary());
            out.push('\n');
        }
        out
    }
}

/// Executes a named sequence of passes, recording a [`PipelineTrace`].
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PassManager")
            .field("passes", &names)
            .finish()
    }
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pass (builder style).
    pub fn with(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a closure as a pass (builder style).
    pub fn with_fn(
        self,
        name: impl Into<String>,
        kind: PassKind,
        f: impl FnMut(PassIr, &mut PassCx) -> Result<PassIr, PassError> + 'static,
    ) -> Self {
        self.with(FnPass {
            name: name.into(),
            kind,
            f,
        })
    }

    /// Runs every pass in sequence, threading `cx` through, and returns the
    /// final IR plus the per-pass trace.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first pass failure.
    pub fn run(
        &mut self,
        mut ir: PassIr,
        cx: &mut PassCx,
    ) -> Result<(PassIr, PipelineTrace), PassError> {
        let mut trace = PipelineTrace::default();
        let mut level_before = ir.max_level();
        for pass in &mut self.passes {
            let ops_before = ir.num_ops();
            cx.notes.clear();
            let t0 = Instant::now();
            ir = pass.run(ir, cx)?;
            let wall = t0.elapsed();
            let max_level_after = ir.max_level();
            trace.passes.push(PassRecord {
                name: pass.name().to_string(),
                kind: pass.kind(),
                wall,
                ops_before,
                ops_after: ir.num_ops(),
                max_level_before: level_before,
                max_level_after,
                notes: std::mem::take(&mut cx.notes),
            });
            level_before = max_level_after;
        }
        Ok((ir, trace))
    }
}

/// The shared cleanup pass (CSE/DCE/folding to fixpoint) every compiler
/// runs before scale management, so op counts stay comparable (§8.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct CleanupPass;

impl Pass for CleanupPass {
    fn name(&self) -> &str {
        "cleanup"
    }

    fn kind(&self) -> PassKind {
        PassKind::Cleanup
    }

    fn run(&mut self, ir: PassIr, _cx: &mut PassCx) -> Result<PassIr, PassError> {
        let p = ir.try_source("cleanup")?;
        Ok(PassIr::Source(crate::passes::cleanup(&p)))
    }
}

/// Validates the scheduled program; fails with the validator's errors.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidatePass;

impl Pass for ValidatePass {
    fn name(&self) -> &str {
        "validate"
    }

    fn kind(&self) -> PassKind {
        PassKind::Check
    }

    fn run(&mut self, ir: PassIr, _cx: &mut PassCx) -> Result<PassIr, PassError> {
        let s = ir.try_scheduled("validate")?;
        if let Err(errs) = s.validate() {
            return Err(PassError::with_diagnostics("validate", &errs));
        }
        Ok(PassIr::Scheduled(s))
    }
}

// ---------------------------------------------------------------------------
// Unified compiler artifacts.
// ---------------------------------------------------------------------------

/// Compilation statistics every compiler reports identically — the union of
/// the paper's Table 4 columns plus the per-pass [`PipelineTrace`].
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// The compiler's label ("EVA", "Hecate", "BA", "RA", "This work").
    pub compiler: String,
    /// Time in scale management proper (sum of `ScaleManagement` passes).
    pub scale_management_time: Duration,
    /// End-to-end compile time including cleanup and validation.
    pub total_time: Duration,
    /// Candidate plans evaluated (1 for direct compilers; Table 4's
    /// `# Iters` for Hecate).
    pub iterations: usize,
    /// Op count entering scale management (after cleanup).
    pub ops_before: usize,
    /// Op count of the scheduled program.
    pub ops_after: usize,
    /// Rescale hoists applied (reserve pipeline; 0 elsewhere).
    pub hoists: usize,
    /// Statically estimated latency of the result (µs).
    pub estimated_latency_us: f64,
    /// Modulus level required of fresh encryptions.
    pub max_level: u32,
    /// Lint findings recorded by analysis passes (empty when the pipeline
    /// runs no lints, or when the schedule is clean).
    pub findings: Vec<Finding>,
    /// Translation-validation verdict: `Some(true)` when the scheduled
    /// program was proven equal to the source modulo scale management,
    /// `Some(false)` on a mismatch, `None` when the pass did not run.
    pub translation_validated: Option<bool>,
    /// Static peak-memory bound of the scheduled program (assuming the
    /// runtime convention `N = 2 × slots`). The fuzz oracle asserts this
    /// dominates every measured execution peak.
    pub memory: crate::memory::MemoryEstimate,
    /// Static parallelism profile of the schedule's dependence DAG:
    /// work/span, maximum width, and the `T(k)` latency-at-width curve.
    /// The fuzz oracle asserts span ≤ work and that a single-threaded
    /// measured run dominates the calibrated span.
    pub parallelism: crate::depgraph::ParallelismEstimate,
    /// Per-pass instrumentation.
    pub trace: PipelineTrace,
}

/// Output of any [`ScaleCompiler`].
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The scheduled program (validates by construction).
    pub scheduled: ScheduledProgram,
    /// Compilation statistics.
    pub report: CompileReport,
}

/// Why compilation failed, uniformly across compilers.
#[derive(Debug, Clone)]
pub struct CompileError {
    /// The compiler that failed.
    pub compiler: String,
    /// The failing pass and its diagnostics.
    pub error: PassError,
}

impl CompileError {
    /// Wraps a pass failure with the compiler's name.
    pub fn in_compiler(compiler: impl Into<String>, error: PassError) -> Self {
        CompileError {
            compiler: compiler.into(),
            error,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} compilation failed: {}", self.compiler, self.error)
    }
}

impl std::error::Error for CompileError {}

/// A scale-management compiler: [`Program`] in, [`Compiled`] out.
///
/// Implementations: the reserve compiler (`reserve_core::ReserveCompiler`,
/// in its three ablation modes), EVA (`fhe_baselines::EvaCompiler`), and
/// Hecate (`fhe_baselines::HecateCompiler`). Harnesses iterate
/// `&[&dyn ScaleCompiler]`, so a new strategy is one impl, zero harness
/// changes.
pub trait ScaleCompiler {
    /// Display label, as used in the paper's tables.
    fn name(&self) -> &str;

    /// Compiles `program` under `params`.
    ///
    /// # Errors
    ///
    /// Fails when the program cannot be scheduled under `params` (most
    /// commonly: depth beyond `params.max_level`).
    fn compile(&self, program: &Program, params: &CompileParams) -> Result<Compiled, CompileError>;
}

/// Assembles the uniform [`Compiled`] artifact from a finished pipeline:
/// validates the schedule, derives the Table 4 columns from the trace and
/// context counters, and estimates latency under the context's cost model.
///
/// # Errors
///
/// Fails (as pass `"validate"`) when the schedule is illegal — a compiler
/// bug, surfaced rather than panicked on so fuzzing can observe it.
pub fn finish_compiled(
    compiler: impl Into<String>,
    scheduled: ScheduledProgram,
    trace: PipelineTrace,
    cx: &PassCx,
    total_time: Duration,
    ops_before: usize,
) -> Result<Compiled, CompileError> {
    let compiler = compiler.into();
    let map = match scheduled.validate() {
        Ok(map) => map,
        Err(errs) => {
            return Err(CompileError::in_compiler(
                compiler,
                PassError::with_diagnostics("validate", &errs),
            ))
        }
    };
    let estimated_latency_us = cx.cost_model.program_cost(&scheduled.program, &map);
    let mem_cfg = cx
        .get::<crate::memory::MemoryModelConfig>()
        .copied()
        .unwrap_or_default();
    let memory = crate::memory::estimate_memory(
        &scheduled,
        &map,
        2 * scheduled.program.slots(),
        mem_cfg.hoist_rotations,
    );
    let parallelism =
        crate::depgraph::analyze(&scheduled, &map, &cx.cost_model, mem_cfg.hoist_rotations);
    let report = CompileReport {
        compiler,
        scale_management_time: trace.scale_management_time(),
        total_time,
        iterations: cx.iterations.max(1),
        ops_before,
        ops_after: scheduled.program.num_ops(),
        hoists: cx.hoists,
        estimated_latency_us,
        max_level: map.max_level(),
        findings: cx.findings().to_vec(),
        translation_validated: cx.get::<TvVerdict>().map(|v| v.validated),
        memory,
        parallelism,
        trace,
    };
    Ok(Compiled { scheduled, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    fn square_sum() -> Program {
        let b = Builder::new("t", 4);
        let x = b.input("x");
        let a = x.clone() * x.clone();
        let c = x.clone() * x;
        b.finish(vec![a + c])
    }

    fn cx() -> PassCx {
        PassCx::new(CompileParams::new(20), CostModel::paper_table3())
    }

    #[test]
    fn manager_records_op_deltas_and_notes() {
        let mut cx = cx();
        let mut pm =
            PassManager::new()
                .with(CleanupPass)
                .with_fn("tag", PassKind::Analysis, |ir, cx| {
                    cx.note("hello");
                    Ok(ir)
                });
        let (ir, trace) = pm.run(PassIr::Source(square_sum()), &mut cx).unwrap();
        assert_eq!(trace.passes.len(), 2);
        let cleanup = trace.pass("cleanup").unwrap();
        assert!(
            cleanup.ops_after < cleanup.ops_before,
            "CSE merged the squares"
        );
        assert_eq!(trace.pass("tag").unwrap().notes, vec!["hello".to_string()]);
        assert_eq!(ir.num_ops(), 3); // x, x·x, add
        assert!(trace.total_time() >= trace.scale_management_time());
    }

    #[test]
    fn first_failing_pass_stops_the_pipeline() {
        let mut cx = cx();
        let mut pm = PassManager::new()
            .with_fn("boom", PassKind::ScaleManagement, |_ir, _cx| {
                Err(PassError::new("boom", "nope"))
            })
            .with_fn("unreached", PassKind::ScaleManagement, |ir, _cx| Ok(ir));
        let err = pm.run(PassIr::Source(square_sum()), &mut cx).unwrap_err();
        assert_eq!(err.pass, "boom");
        assert_eq!(err.diagnostics, vec!["nope".to_string()]);
    }

    #[test]
    fn blackboard_stores_and_takes_artifacts() {
        #[derive(Debug, PartialEq)]
        struct Order(Vec<u32>);
        let mut cx = cx();
        cx.put(Order(vec![3, 1, 2]));
        assert_eq!(cx.get::<Order>(), Some(&Order(vec![3, 1, 2])));
        assert_eq!(cx.take::<Order>(), Some(Order(vec![3, 1, 2])));
        assert!(cx.get::<Order>().is_none());
    }

    #[test]
    fn trace_summary_is_deterministic_and_timeless() {
        let mut pm = PassManager::new().with(CleanupPass);
        let (_, trace) = pm.run(PassIr::Source(square_sum()), &mut cx()).unwrap();
        let s = trace.summary();
        assert!(
            s.contains("cleanup [cleanup]: ops 4 -> 3, level - -> -"),
            "got: {s}"
        );
        assert!(
            !s.contains("µs") && !s.contains("ms"),
            "summaries must omit wall time"
        );
    }

    #[test]
    fn stage_mismatch_is_a_pass_error() {
        let mut pm = PassManager::new().with(ValidatePass);
        let err = pm.run(PassIr::Source(square_sum()), &mut cx()).unwrap_err();
        assert_eq!(err.pass, "validate");
    }
}
