//! Per-session state: key material, execution options, quarantine.
//!
//! A session owns its keys. All sessions share the server's compile
//! cache, per-degree polynomial pools and the persistent work-stealing
//! pool, but key material ([`SessionKeys`]: secret, relinearization,
//! Galois) is generated per session from the session's own seed and is
//! never visible to another session — the isolation boundary of the
//! service layer.
//!
//! Key material is cached per *shape* (modulus chain depth, rescale
//! bits, and — under eager provisioning — the program's rotation steps),
//! so a session running many programs of the same shape pays keygen once.

use fhe_conc::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use fhe_conc::sync::{Arc, Mutex, RwLock};
use std::collections::HashMap;

use fhe_ckks::KeyCacheStats;
use fhe_ir::{ScheduleError, ScheduledProgram};
use fhe_runtime::{rotation_steps, KeyPolicy, MemStats, ParOptions, SessionKeys};

/// Opaque session identifier issued by [`SessionStore::create`].
pub type SessionId = u64;

/// `splitmix64` finalizer — the per-request encryption-seed mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The encryption seed of request number `index` (0-based, in submission
/// order) of a session seeded with `session_seed`.
///
/// This is a pure function so a serial replay can reproduce a concurrent
/// run byte-for-byte: outputs depend only on (schedule, inputs, keys,
/// this seed), never on scheduling interleavings.
pub fn request_seed(session_seed: u64, index: u64) -> u64 {
    splitmix64(session_seed ^ splitmix64(index.wrapping_add(1)))
}

/// The key-material shape a schedule requires. Sessions cache one
/// [`SessionKeys`] per shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct KeyShape {
    max_level: u32,
    rescale_bits: u32,
    /// Rotation steps baked into the static Galois set — populated only
    /// under [`KeyPolicy::EagerProgram`] (lazy and explicit-set policies
    /// are shape-independent of the program's steps).
    steps: Vec<i64>,
}

/// One client's state: options, keys, request sequence and health.
#[derive(Debug)]
pub(crate) struct Session {
    id: SessionId,
    options: ParOptions,
    keys: Mutex<HashMap<KeyShape, Arc<SessionKeys>>>,
    seq: AtomicU64,
    quarantined: AtomicBool,
    requests: AtomicU64,
    failures: AtomicU64,
    peak_bytes: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    key_hits: AtomicU64,
    key_misses: AtomicU64,
    key_evictions: AtomicU64,
}

impl Session {
    pub(crate) fn id(&self) -> SessionId {
        self.id
    }

    pub(crate) fn options(&self) -> &ParOptions {
        &self.options
    }

    /// Claims the next request index (submission order).
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    pub(crate) fn quarantine(&self) {
        self.quarantined.store(true, Ordering::Release);
    }

    /// The session's key material for `scheduled`'s shape, generating it
    /// on first use and reusing it for every later schedule of the same
    /// shape.
    pub(crate) fn keys_for(
        &self,
        scheduled: &ScheduledProgram,
    ) -> Result<Arc<SessionKeys>, Vec<ScheduleError>> {
        let map = scheduled.validate()?;
        let steps = match self.options.exec.keys {
            KeyPolicy::EagerProgram => rotation_steps(&scheduled.program),
            _ => Vec::new(),
        };
        let shape = KeyShape {
            max_level: map.max_level(),
            rescale_bits: scheduled.params.rescale_bits,
            steps,
        };
        if let Some(existing) = self
            .keys
            .lock()
            .expect("session key lock")
            .get(&shape)
            .cloned()
        {
            return Ok(existing);
        }
        // Generate *outside* the lock: keygen can panic on out-of-range
        // client-controlled parameters (the server catches the unwind at
        // the request boundary), and a panic while holding this mutex
        // would poison it for the session's stats. Generation is
        // deterministic from (session seed, shape), so two racing
        // requests of the same shape produce byte-identical material and
        // either insert is correct.
        let generated = Arc::new(SessionKeys::generate(
            &self.options.exec,
            shape.max_level as usize,
            shape.rescale_bits,
            &shape.steps,
        ));
        let mut keys = self.keys.lock().expect("session key lock");
        Ok(keys.entry(shape).or_insert(generated).clone())
    }

    pub(crate) fn record_success(&self, mem: &MemStats) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.peak_bytes.fetch_max(mem.peak_bytes, Ordering::Relaxed);
        self.pool_hits.fetch_add(mem.pool_hits, Ordering::Relaxed);
        self.pool_misses
            .fetch_add(mem.pool_misses, Ordering::Relaxed);
        self.key_hits.fetch_add(mem.key_hits, Ordering::Relaxed);
        self.key_misses.fetch_add(mem.key_misses, Ordering::Relaxed);
        self.key_evictions
            .fetch_add(mem.key_evictions, Ordering::Relaxed);
    }

    pub(crate) fn record_failure(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> SessionStats {
        let keys = self.keys.lock().expect("session key lock");
        let mut key_cache: Option<KeyCacheStats> = None;
        for sk in keys.values() {
            if let Some(cache) = sk.key_cache() {
                let s = cache.stats();
                let acc = key_cache.get_or_insert_with(KeyCacheStats::default);
                acc.hits += s.hits;
                acc.misses += s.misses;
                acc.evictions += s.evictions;
                acc.bytes += s.bytes;
                acc.peak_bytes += s.peak_bytes;
            }
        }
        SessionStats {
            id: self.id,
            requests: self.requests.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            quarantined: self.is_quarantined(),
            key_shapes: keys.len(),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            key_hits: self.key_hits.load(Ordering::Relaxed),
            key_misses: self.key_misses.load(Ordering::Relaxed),
            key_evictions: self.key_evictions.load(Ordering::Relaxed),
            key_cache,
        }
    }
}

/// Public per-session snapshot, summed over the session's completed
/// requests (counter fields are sums of per-request [`MemStats`] deltas;
/// `peak_bytes` is the maximum over the session's requests of the
/// **shared** pool's high-water mark — see its field doc for the
/// cross-session caveat).
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Session id.
    pub id: SessionId,
    /// Completed requests (successes and failures).
    pub requests: u64,
    /// Requests that returned an error.
    pub failures: u64,
    /// Whether a panicking request quarantined the session.
    pub quarantined: bool,
    /// Distinct key shapes the session generated material for.
    pub key_shapes: usize,
    /// Maximum, over this session's successful requests, of
    /// [`MemStats::peak_bytes`] — the absolute high-water mark of the
    /// **shared** per-degree pool plus this session's key bytes at the
    /// time the request completed. Because the pool is shared, concurrent
    /// traffic from *other* sessions raises the watermark every session
    /// observes: under concurrency this is "peak service memory while the
    /// session was active", not memory attributable to the session alone.
    /// Only a serial, single-session run reads as a per-session peak.
    pub peak_bytes: u64,
    /// Summed per-request pool hits.
    pub pool_hits: u64,
    /// Summed per-request pool misses.
    pub pool_misses: u64,
    /// Summed per-request Galois-key hits.
    pub key_hits: u64,
    /// Summed per-request Galois-key misses.
    pub key_misses: u64,
    /// Summed per-request Galois-key evictions.
    pub key_evictions: u64,
    /// The session's lazy key-cache counters (summed over shapes), when
    /// the session runs under [`KeyPolicy::Lazy`].
    pub key_cache: Option<KeyCacheStats>,
}

/// Issues session ids and owns every session's state.
#[derive(Debug, Default)]
pub struct SessionStore {
    sessions: RwLock<HashMap<SessionId, Arc<Session>>>,
    next: AtomicU64,
}

impl SessionStore {
    /// An empty store.
    pub fn new() -> SessionStore {
        SessionStore::default()
    }

    /// Creates a session executing under `options` (seed, polynomial
    /// degree, key policy, workers) and returns its id.
    pub fn create(&self, options: ParOptions) -> SessionId {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let session = Arc::new(Session {
            id,
            options,
            keys: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            key_hits: AtomicU64::new(0),
            key_misses: AtomicU64::new(0),
            key_evictions: AtomicU64::new(0),
        });
        self.sessions
            .write()
            .expect("session store lock")
            .insert(id, session);
        id
    }

    pub(crate) fn get(&self, id: SessionId) -> Option<Arc<Session>> {
        self.sessions
            .read()
            .expect("session store lock")
            .get(&id)
            .cloned()
    }

    /// Per-session snapshots, ordered by id.
    pub fn stats(&self) -> Vec<SessionStats> {
        let sessions = self.sessions.read().expect("session store lock");
        let mut out: Vec<SessionStats> = sessions.values().map(|s| s.stats()).collect();
        out.sort_by_key(|s| s.id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_seed_is_stable_and_spread() {
        // Pinned values: the concurrency suite's serial replay depends on
        // this mapping never changing.
        assert_eq!(request_seed(7, 0), request_seed(7, 0));
        assert_ne!(request_seed(7, 0), request_seed(7, 1));
        assert_ne!(request_seed(7, 0), request_seed(8, 0));
        // Consecutive indices land far apart (no accidental stream reuse).
        let a = request_seed(0xC0FFEE, 0);
        let b = request_seed(0xC0FFEE, 1);
        assert!((a ^ b).count_ones() > 8);
    }

    #[test]
    fn sessions_get_distinct_ids_and_isolated_quarantine() {
        let store = SessionStore::new();
        let a = store.create(ParOptions::default());
        let b = store.create(ParOptions::default());
        assert_ne!(a, b);
        store.get(a).unwrap().quarantine();
        assert!(store.get(a).unwrap().is_quarantined());
        assert!(!store.get(b).unwrap().is_quarantined());
        assert!(store.get(999).is_none());
        let stats = store.stats();
        assert_eq!(stats.len(), 2);
        assert!(stats[0].quarantined && !stats[1].quarantined);
    }
}
