//! DAG-parallel encrypted execution on the persistent work-stealing pool.
//!
//! [`execute_parallel`] runs the same RNS-CKKS backend as
//! [`crate::ckks_exec`], but instead of walking the schedule serially it
//! consumes the schedule's dependence DAG ([`fhe_ir::DepGraph`], including
//! the anti edges from pool freeing and the output edges from rotation
//! hoisting) with `k` runners on the process-wide [`fhe_ckks::Pool`]. Each
//! runner pops ready ops from a shared [`fhe_ir::DepConsumer`] frontier,
//! executes them against one shared [`Evaluator`], and retires them,
//! unlocking successors — op-level parallelism layered on top of the same
//! pool the per-limb kernel fan-out uses (nested batches make progress
//! because every submitter participates in its own batch).
//!
//! Three invariants make the walk sound and bit-exact:
//!
//! 1. **Safety is proven, not assumed.** Before going wide the executor
//!    runs [`fhe_analysis::parallel::check`] over the very DAG it is about
//!    to consume and refuses (panics) on any unordered read/free or
//!    group-writer hazard. The DAG's anti/output edges discharge exactly
//!    those obligations, so a schedule that builds a full DAG always
//!    passes; the assertion guards against future divergence between the
//!    graph builder and the runtime's freeing discipline.
//! 2. **Determinism is confined to the serial prologue.** Key generation
//!    and input encryption consume the seeded RNG in schedule order before
//!    any parallelism starts; lazily generated Galois keys come from
//!    per-element RNG streams, so their generation order cannot change
//!    results. Every homomorphic op is a deterministic function of its
//!    operand bytes, so outputs are byte-identical to the serial executor
//!    for every worker count.
//! 3. **Fusion never changes bytes.** When a cipher×cipher mul's sole
//!    consumer is its rescale, the pair runs as one fused
//!    [`Evaluator::mul_rescale`] kernel (the relinearized full-level
//!    product is rescaled in place, never materialized). The fused kernel
//!    is bit-identical to the mul→rescale sequence; fusion only deletes
//!    the intermediate ciphertext and one scheduling round-trip.
//!
//! Hoisted rotation groups execute at their leader (the DAG's output
//! edges order members after it), sharing one key-switch decomposition
//! across the group exactly as in the serial executor.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use fhe_ckks::{
    decrypt, encrypt_symmetric, Ciphertext, CkksContext, CkksParams, Evaluator, GaloisKeys,
    KeyCache, KeyGenerator, PolyPool, Pool, SecretKey,
};
use fhe_ir::{
    CostModel, DepConsumer, DepGraph, FusionPlan, Op, OpClass, ScaleMap, ScheduleError,
    ScheduledProgram, ValueId,
};

use crate::ckks_exec::{
    bin, get, mem_snapshot, rotation_steps, ExecOptions, KeyPolicy, SessionKeys,
    KEY_CACHE_SEED_TWEAK,
};
use crate::executor::MemStats;
use crate::plain;

/// Options for DAG-parallel encrypted execution.
#[derive(Debug, Clone)]
pub struct ParOptions {
    /// Backend configuration shared with the serial executor (degree,
    /// seed, key policy, per-limb threads, rotation hoisting).
    pub exec: ExecOptions,
    /// Op-level runners walking the DAG: `0` = auto (the global pool's
    /// worker count), `1` = serial DAG walk on the calling thread.
    /// Results are bit-identical for every value.
    pub workers: usize,
    /// Execute fusible mul→rescale pairs as one fused mul·relin·rescale
    /// kernel. Bit-identical either way; fusion skips materializing the
    /// full-level product.
    pub fusion: bool,
}

impl Default for ParOptions {
    fn default() -> Self {
        ParOptions {
            exec: ExecOptions::default(),
            workers: 0,
            fusion: true,
        }
    }
}

/// Result of a DAG-parallel encrypted execution: the serial executor's
/// report plus the walk's parallel-specific telemetry.
#[derive(Debug, Clone)]
pub struct ParReport {
    /// Decrypted program outputs.
    pub outputs: Vec<Vec<f64>>,
    /// Plaintext reference outputs.
    pub reference: Vec<Vec<f64>>,
    /// Wall-clock time of the homomorphic phase: the serial prologue
    /// (input encryption) plus the parallel DAG walk.
    pub op_time: Duration,
    /// Wall-clock time of the parallel DAG walk alone — the measured
    /// `T(k)` the depgraph's prediction is validated against.
    pub walk_time: Duration,
    /// End-to-end time including keygen/encrypt/decrypt.
    pub total_time: Duration,
    /// Number of homomorphic ops executed (inputs included).
    pub ops_executed: usize,
    /// CPU time and op count per Table 3 op class, summed across runners
    /// (under parallelism the durations sum past `op_time`). A fused
    /// mul·relin·rescale charges its whole latency to the mul's class and
    /// counts the rescale with zero duration.
    pub per_class: Vec<(OpClass, Duration, usize)>,
    /// Whole-run memory counters (pool + key material); exact under
    /// contention thanks to the pool's atomic accounting. Per-class memory
    /// attribution is inherently serial (it diffs whole-pool snapshots
    /// between consecutive ops) and is not reported here.
    pub mem: MemStats,
    /// Per-node wall latency `(op, duration)` in retirement order — the
    /// measured per-op costs a virtual-time replay of the walk uses.
    pub node_times: Vec<(ValueId, Duration)>,
    /// Runners the walk used after resolving `workers = 0`.
    pub workers: usize,
    /// mul→rescale pairs executed fused.
    pub fused: usize,
    /// Hoisted rotation groups executed at their leader.
    pub hoisted_groups: usize,
    /// Read/free and group-writer orderings the safety proof discharged
    /// before the walk went wide.
    pub safety_obligations: usize,
}

impl ParReport {
    /// Maximum absolute slot error vs the reference.
    pub fn max_abs_error(&self) -> f64 {
        self.outputs
            .iter()
            .zip(&self.reference)
            .flat_map(|(o, r)| o.iter().zip(r).map(|(a, b)| (a - b).abs()))
            .fold(0.0, f64::max)
    }
}

/// The DAG walk's shared frontier: the consumer plus the first error any
/// runner hit (runners drain and exit once it is set).
struct Walk {
    consumer: DepConsumer,
    error: Option<Vec<ScheduleError>>,
}

/// Executes a scheduled program under real RNS-CKKS encryption by
/// consuming its dependence DAG with `options.workers` runners.
///
/// Outputs are byte-identical to [`crate::ckks_exec::execute`] at the
/// same [`ExecOptions`], for every worker count and fusion setting.
///
/// # Errors
///
/// Returns the schedule's validation errors if it is illegal, or a
/// [`ScheduleError::MissingKey`] if a rotation lacks its Galois key under
/// an eager key policy.
///
/// # Panics
///
/// Panics if the program's slot count differs from `poly_degree / 2`, or
/// if the parallel-safety proof finds an unordered hazard in the DAG —
/// the executor never goes wide on a schedule it cannot prove race-free.
pub fn execute_parallel(
    scheduled: &ScheduledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    options: &ParOptions,
) -> Result<ParReport, Vec<ScheduleError>> {
    let map = scheduled.validate()?;
    let program = &scheduled.program;
    assert_eq!(
        program.slots(),
        options.exec.poly_degree / 2,
        "program slots must match N/2 for rotation semantics"
    );

    let t_total = Instant::now();
    let ckks_params = CkksParams {
        poly_degree: options.exec.poly_degree,
        max_level: map.max_level() as usize,
        modulus_bits: scheduled.params.rescale_bits,
        special_bits: scheduled.params.rescale_bits.min(60) + 1,
        error_std: 3.2,
        threads: options.exec.threads,
    };
    let ctx = CkksContext::new(ckks_params);
    let mut rng = StdRng::seed_from_u64(options.exec.seed);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let sk = kg.secret_key();
    let relin = kg.relin_key(&mut rng);
    let (galois, cache) = match &options.exec.keys {
        KeyPolicy::Lazy { budget_bytes } => {
            let cache = KeyCache::new(
                kg.secret_key(),
                options.exec.seed ^ KEY_CACHE_SEED_TWEAK,
                *budget_bytes,
            );
            (GaloisKeys::default(), Some(cache))
        }
        KeyPolicy::EagerProgram => (kg.galois_keys(rotation_steps(program), &mut rng), None),
        KeyPolicy::EagerSet(steps) => (kg.galois_keys(steps.iter().copied(), &mut rng), None),
    };
    let static_key_bytes = galois.byte_size() as u64;
    let fixed_key_bytes = (sk.byte_size() + relin.byte_size()) as u64;
    let mut ev = Evaluator::new(&ctx, Some(relin), galois);
    if let Some(cache) = cache {
        ev = ev.with_key_cache(cache);
    }
    run_parallel(
        scheduled,
        &map,
        inputs,
        options,
        &ev,
        &ctx,
        &sk,
        &mut rng,
        fixed_key_bytes,
        static_key_bytes,
        t_total,
    )
}

/// DAG-parallel execution against pre-generated [`SessionKeys`] and an
/// optionally shared [`PolyPool`] — the parallel request path of a serving
/// layer. See [`crate::ckks_exec::execute_with_keys`] for the `enc_seed`
/// determinism contract and the [`MemStats`] delta semantics, both of
/// which hold here unchanged (the serial prologue encrypts inputs in
/// schedule order from `enc_seed`).
///
/// # Errors
///
/// Returns the schedule's validation errors if it is illegal, or a
/// [`ScheduleError::MissingKey`] if a rotation lacks its Galois key under
/// an eager key policy.
///
/// # Panics
///
/// Panics on a session-context mismatch (slot count, level capacity or
/// chain-prime size), a missing input binding, or a failed parallel-safety
/// proof.
pub fn execute_parallel_with_keys(
    scheduled: &ScheduledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    options: &ParOptions,
    keys: &SessionKeys,
    pool: Option<Arc<PolyPool>>,
    enc_seed: u64,
) -> Result<ParReport, Vec<ScheduleError>> {
    let map = scheduled.validate()?;
    let ctx = keys.context();
    assert_eq!(
        scheduled.program.slots(),
        ctx.degree() / 2,
        "program slots must match the session context's N/2"
    );
    assert!(
        map.max_level() as usize <= ctx.max_level(),
        "schedule needs level {} but the session context provides {}",
        map.max_level(),
        ctx.max_level()
    );
    assert_eq!(
        scheduled.params.rescale_bits,
        ctx.params().modulus_bits,
        "schedule rescale bits must match the session context's chain primes"
    );

    let t_total = Instant::now();
    let mut ev = Evaluator::new_shared(ctx, Some(keys.relin_handle()), keys.galois_handle());
    if let Some(cache) = keys.cache_handle() {
        ev = ev.with_key_cache_handle(cache);
    }
    if let Some(pool) = pool {
        ev = ev.with_pool(pool);
    }
    let mut rng = StdRng::seed_from_u64(enc_seed);
    run_parallel(
        scheduled,
        &map,
        inputs,
        options,
        &ev,
        ctx,
        keys.secret_key(),
        &mut rng,
        keys.fixed_key_bytes(),
        keys.static_key_bytes(),
        t_total,
    )
}

/// The shared post-keygen body of [`execute_parallel`] and
/// [`execute_parallel_with_keys`]: serial prologue, safety proof, then the
/// parallel DAG walk.
#[allow(clippy::too_many_arguments)]
fn run_parallel(
    scheduled: &ScheduledProgram,
    map: &ScaleMap,
    inputs: &HashMap<String, Vec<f64>>,
    options: &ParOptions,
    ev: &Evaluator<'_>,
    ctx: &CkksContext,
    sk: &SecretKey,
    rng: &mut StdRng,
    fixed_key_bytes: u64,
    static_key_bytes: u64,
    t_total: Instant,
) -> Result<ParReport, Vec<ScheduleError>> {
    let program = &scheduled.program;
    let start_mem = mem_snapshot(ev, fixed_key_bytes, static_key_bytes);

    // The DAG this executor consumes, and the proof that consuming it in
    // any topological order is race-free under the freeing discipline.
    let hoisting = options.exec.rotation_hoisting;
    let graph = DepGraph::build(scheduled, map, &CostModel::paper_table3(), hoisting);
    let safety = fhe_analysis::parallel::check(scheduled, &graph, hoisting);
    assert!(
        safety.race_free(),
        "schedule failed the parallel-safety proof: {:?}",
        safety.violations
    );

    let slots_n = program.slots();
    let live = fhe_ir::analysis::live(program);
    let waterline = 2f64.powi(scheduled.params.waterline_bits as i32);

    // Rotation groups sharing one hoisted decomposition, as in the serial
    // executor; the DAG's output edges order members after their leader.
    let mut rotation_groups: HashMap<ValueId, Vec<(ValueId, i64)>> = HashMap::new();
    for id in program.ids() {
        if let Op::Rotate(a, k) = program.op(id) {
            if live[id.index()] && program.is_cipher(id) {
                rotation_groups.entry(*a).or_default().push((id, *k));
            }
        }
    }
    rotation_groups.retain(|_, group| group.len() >= 2);
    if !hoisting {
        rotation_groups.clear();
    }
    let hoisted_groups = rotation_groups.len();

    // Fusion plan, demoted per pair unless the DAG confirms the rescale
    // depends on nothing but its mul (so completing the mul is the only
    // event that can make it ready, and the fused result is in place by
    // then). A full DAG always confirms a planned pair; the check guards
    // against the graph builder growing new edge kinds.
    let mut rescale_of: Vec<Option<ValueId>> = vec![None; program.num_ops()];
    let mut fused_at: Vec<Option<ValueId>> = vec![None; program.num_ops()];
    let mut fused = 0usize;
    if options.fusion {
        let plan = FusionPlan::plan(scheduled);
        for &(m, r) in plan.pairs() {
            let (Some(mn), Some(rn)) = (graph.node(m), graph.node(r)) else {
                continue;
            };
            if graph.preds(rn).iter().all(|&(p, _)| p == mn) {
                rescale_of[m.index()] = Some(r);
                fused_at[r.index()] = Some(m);
                fused += 1;
            }
        }
    }

    // Last-use positions drive eager freeing, exactly as in the serial
    // executor; the DAG's anti edges order every other reader before the
    // freeing op, so a take() here can never race a read.
    let mut last_use: Vec<usize> = vec![0; program.num_ops()];
    let mut is_output = vec![false; program.num_ops()];
    for &o in program.outputs() {
        is_output[o.index()] = true;
    }
    for id in program.ids() {
        if !live[id.index()] {
            continue;
        }
        for a in program.op(id).operands() {
            last_use[a.index()] = id.index();
        }
    }

    // Serial prologue: plaintext sub-values and input encryption consume
    // the seeded RNG in schedule order, so the ciphertext bytes entering
    // the walk match the serial executor's exactly.
    let mut plain_vals: Vec<Option<Vec<f64>>> = vec![None; program.num_ops()];
    let cipher_slots: Vec<RwLock<Option<Ciphertext>>> =
        (0..program.num_ops()).map(|_| RwLock::new(None)).collect();
    let mut input_iter = scheduled.inputs.iter();
    let mut encrypted_inputs = 0usize;
    let t_ops = Instant::now();
    for id in program.ids() {
        if !live[id.index()] {
            if matches!(program.op(id), Op::Input { .. }) {
                let _ = input_iter.next();
            }
            continue;
        }
        if program.is_plain(id) {
            let v = match program.op(id) {
                Op::Const { value } => value.to_vec(slots_n),
                Op::Add(a, b) => bin(&plain_vals, *a, *b, |x, y| x + y),
                Op::Sub(a, b) => bin(&plain_vals, *a, *b, |x, y| x - y),
                Op::Mul(a, b) => bin(&plain_vals, *a, *b, |x, y| x * y),
                Op::Neg(a) => get(&plain_vals, *a).iter().map(|x| -x).collect(),
                Op::Rotate(a, k) => plain::rotate(get(&plain_vals, *a), *k),
                other => unreachable!("plain {other:?}"),
            };
            plain_vals[id.index()] = Some(v);
            continue;
        }
        if let Op::Input { name } = program.op(id) {
            let spec = input_iter.next().expect("input specs match inputs");
            let data = inputs
                .get(name)
                .unwrap_or_else(|| panic!("missing input binding `{name}`"));
            let scale = 2f64.powf(spec.scale_bits.to_f64());
            let pt = ev.encoder().encode(data, scale, spec.level as usize);
            let ct = encrypt_symmetric(ctx, sk, &pt, rng);
            ev.pool().adopt(2 * ct.level);
            *cipher_slots[id.index()].write().expect("slot lock") = Some(ct);
            encrypted_inputs += 1;
        }
    }

    // The parallel walk. Runners share the frontier under one mutex; the
    // condvar wakes idle runners whenever a completion readies new nodes.
    let workers = if options.workers == 0 {
        Pool::global().workers().max(1)
    } else {
        options.workers
    };
    let walk = Mutex::new(Walk {
        consumer: DepConsumer::new(&graph),
        error: None,
    });
    let ready_cv = Condvar::new();
    let hoisted: Mutex<HashMap<ValueId, Ciphertext>> = Mutex::new(HashMap::new());
    let by_class: Mutex<[(Duration, usize); OpClass::ALL.len()]> =
        Mutex::new([(Duration::ZERO, 0); OpClass::ALL.len()]);
    let node_times: Mutex<Vec<(ValueId, Duration)>> = Mutex::new(Vec::new());
    let cipher_ops = AtomicUsize::new(0);

    let charge = |class: Option<OpClass>, elapsed: Duration| {
        if let Some(class) = class {
            let slot = OpClass::ALL
                .iter()
                .position(|c| *c == class)
                .expect("class in ALL");
            let mut by = by_class.lock().expect("class lock");
            by[slot].0 += elapsed;
            by[slot].1 += 1;
        }
    };

    let runner = |_worker: usize| loop {
        let node = {
            let mut w = walk.lock().expect("walk lock");
            loop {
                if w.error.is_some() || w.consumer.is_done() {
                    return;
                }
                if let Some(n) = w.consumer.pop_ready() {
                    break n;
                }
                w = ready_cv.wait(w).expect("walk lock");
            }
        };
        let id = graph.nodes()[node].id;
        let result = run_node(
            RunCx {
                program,
                map,
                ev,
                plain_vals: &plain_vals,
                cipher_slots: &cipher_slots,
                rotation_groups: &rotation_groups,
                hoisted: &hoisted,
                rescale_of: &rescale_of,
                fused_at: &fused_at,
                last_use: &last_use,
                is_output: &is_output,
                waterline,
            },
            id,
        );
        match result {
            Ok(executed) => {
                for (vid, class, elapsed) in executed {
                    charge(class, elapsed);
                    node_times.lock().expect("times lock").push((vid, elapsed));
                    cipher_ops.fetch_add(1, Ordering::Relaxed);
                }
                let mut w = walk.lock().expect("walk lock");
                w.consumer.complete(&graph, node);
                drop(w);
                ready_cv.notify_all();
            }
            Err(e) => {
                walk.lock().expect("walk lock").error = Some(e);
                ready_cv.notify_all();
                return;
            }
        }
    };

    let t_walk = Instant::now();
    Pool::global().run(workers, workers, &runner);
    let walk_time = t_walk.elapsed();
    let op_time = t_ops.elapsed();

    {
        let w = walk.into_inner().expect("walk lock");
        if let Some(e) = w.error {
            return Err(e);
        }
        assert!(w.consumer.is_done(), "walk retired every node");
    }

    let outputs = program
        .outputs()
        .iter()
        .map(|&o| {
            if program.is_plain(o) {
                return get(&plain_vals, o).clone();
            }
            let guard = cipher_slots[o.index()].read().expect("slot lock");
            let ct = guard.as_ref().expect("output evaluated");
            let mut v = ev.encoder().decode(&decrypt(ctx, sk, ct));
            v.truncate(slots_n);
            v
        })
        .collect();
    let reference = plain::execute(program, inputs);
    let by = by_class.into_inner().expect("class lock");
    let per_class = OpClass::ALL
        .iter()
        .zip(by)
        .filter(|(_, (_, n))| *n > 0)
        .map(|(&c, (d, n))| (c, d, n))
        .collect();
    let mem = mem_snapshot(ev, fixed_key_bytes, static_key_bytes).delta_since(&start_mem);
    Ok(ParReport {
        outputs,
        reference,
        op_time,
        walk_time,
        total_time: t_total.elapsed(),
        ops_executed: encrypted_inputs + cipher_ops.load(Ordering::Relaxed),
        per_class,
        mem,
        node_times: node_times.into_inner().expect("times lock"),
        workers,
        fused,
        hoisted_groups,
        safety_obligations: safety.obligations,
    })
}

/// Everything a runner needs to execute one DAG node, borrowed from the
/// walk's shared state.
struct RunCx<'a, 'c> {
    program: &'a fhe_ir::Program,
    map: &'a fhe_ir::ScaleMap,
    ev: &'a Evaluator<'c>,
    plain_vals: &'a [Option<Vec<f64>>],
    cipher_slots: &'a [RwLock<Option<Ciphertext>>],
    rotation_groups: &'a HashMap<ValueId, Vec<(ValueId, i64)>>,
    hoisted: &'a Mutex<HashMap<ValueId, Ciphertext>>,
    rescale_of: &'a [Option<ValueId>],
    fused_at: &'a [Option<ValueId>],
    last_use: &'a [usize],
    is_output: &'a [bool],
    waterline: f64,
}

impl RunCx<'_, '_> {
    /// Reads a cipher operand slot. The DAG's true edges guarantee the
    /// producer wrote it, and the anti edges guarantee no concurrent
    /// free, so the read lock is never contended by a writer.
    fn cipher(&self, id: ValueId) -> std::sync::RwLockReadGuard<'_, Option<Ciphertext>> {
        self.cipher_slots[id.index()].read().expect("slot lock")
    }

    /// Recycles `id`'s operands whose last consumer just ran (a squared
    /// operand appears twice but is freed once) — the parallel form of
    /// the serial executor's eager freeing, sound because this op is the
    /// value's anti-edge sink.
    fn recycle_operands(&self, id: ValueId) {
        let mut seen = None;
        for a in self.program.op(id).operands() {
            if seen == Some(a) {
                continue;
            }
            seen = Some(a);
            if self.program.is_cipher(a)
                && self.last_use[a.index()] == id.index()
                && !self.is_output[a.index()]
            {
                if let Some(dead) = self.cipher_slots[a.index()]
                    .write()
                    .expect("slot lock")
                    .take()
                {
                    self.ev.recycle_ct(dead);
                }
            }
        }
    }
}

/// Executed-op record: the value produced, its cost class, and its wall
/// latency. A fused pair yields two records from one kernel call.
type Executed = Vec<(ValueId, Option<OpClass>, Duration)>;

/// Executes the op behind one DAG node. Plain ops and inputs were
/// evaluated in the serial prologue and retire for free; fused rescales
/// find their value already in place and retire for free too.
fn run_node(cx: RunCx<'_, '_>, id: ValueId) -> Result<Executed, Vec<ScheduleError>> {
    let program = cx.program;
    let ev = cx.ev;
    if program.is_plain(id) || matches!(program.op(id), Op::Input { .. }) {
        return Ok(Vec::new());
    }
    // A rescale fused into its mul: the kernel at the mul already stored
    // this value (and charged its class); only the bookkeeping remains.
    if cx.fused_at[id.index()].is_some() {
        cx.recycle_operands(id);
        return Ok(vec![(id, CostModel::classify(program, id), Duration::ZERO)]);
    }

    let t0 = Instant::now();
    let (store_id, ct) = match program.op(id) {
        Op::Mul(a, b) if program.is_cipher(*a) && program.is_cipher(*b) => {
            let ga = cx.cipher(*a);
            let gb = cx.cipher(*b);
            let ca = ga.as_ref().expect("cipher operand evaluated");
            let cb = gb.as_ref().expect("cipher operand evaluated");
            match cx.rescale_of[id.index()] {
                // Fused mul·relin·rescale: the result lands under the
                // rescale's id; the mul's full-level product never exists.
                Some(r) => (r, ev.mul_rescale(ca, cb)),
                None => (id, ev.mul(ca, cb)),
            }
        }
        Op::Mul(a, b) => {
            let (c, p) = if program.is_cipher(*a) {
                (*a, *b)
            } else {
                (*b, *a)
            };
            let gc = cx.cipher(c);
            let cc = gc.as_ref().expect("cipher operand evaluated");
            let pt = ev
                .encoder()
                .encode(get(cx.plain_vals, p), cx.waterline, cc.level);
            (id, ev.mul_plain(cc, &pt))
        }
        Op::Add(a, b) | Op::Sub(a, b) => {
            let sub = matches!(program.op(id), Op::Sub(..));
            let out = match (program.is_cipher(*a), program.is_cipher(*b)) {
                (true, true) => {
                    let ga = cx.cipher(*a);
                    let gb = cx.cipher(*b);
                    let ca = ga.as_ref().expect("cipher operand evaluated");
                    let cb = gb.as_ref().expect("cipher operand evaluated");
                    if sub {
                        ev.sub(ca, cb)
                    } else {
                        ev.add(ca, cb)
                    }
                }
                (true, false) => {
                    let ga = cx.cipher(*a);
                    let ca = ga.as_ref().expect("cipher operand evaluated");
                    let pv = get(cx.plain_vals, *b);
                    let pv: Vec<f64> = if sub {
                        pv.iter().map(|x| -x).collect()
                    } else {
                        pv.clone()
                    };
                    let pt = ev.encoder().encode(&pv, ca.scale, ca.level);
                    ev.add_plain(ca, &pt)
                }
                (false, true) => {
                    let gb = cx.cipher(*b);
                    let cb = gb.as_ref().expect("cipher operand evaluated");
                    let pv = get(cx.plain_vals, *a);
                    if sub {
                        let neg = ev.neg(cb);
                        let pt = ev.encoder().encode(pv, neg.scale, neg.level);
                        let out = ev.add_plain(&neg, &pt);
                        ev.recycle_ct(neg);
                        out
                    } else {
                        let pt = ev.encoder().encode(pv, cb.scale, cb.level);
                        ev.add_plain(cb, &pt)
                    }
                }
                (false, false) => unreachable!(),
            };
            (id, out)
        }
        Op::Neg(a) => {
            let ga = cx.cipher(*a);
            (id, ev.neg(ga.as_ref().expect("cipher operand evaluated")))
        }
        Op::Rotate(a, k) => {
            let ready = cx.hoisted.lock().expect("hoisted lock").remove(&id);
            let out = if let Some(ct) = ready {
                ct
            } else if let Some(group) = cx.rotation_groups.get(a) {
                // This op is the group leader (output edges order every
                // other member after it): compute the whole group off one
                // shared decomposition and park the siblings' results.
                let ga = cx.cipher(*a);
                let ca = ga.as_ref().expect("cipher operand evaluated");
                let steps: Vec<i64> = group.iter().map(|&(_, s)| s).collect();
                match ev.try_rotate_hoisted(ca, &steps) {
                    Ok(outs) => {
                        let mut mine = None;
                        let mut park = cx.hoisted.lock().expect("hoisted lock");
                        for (&(gid, _), out) in group.iter().zip(outs) {
                            if gid == id {
                                mine = Some(out);
                            } else {
                                park.insert(gid, out);
                            }
                        }
                        mine.expect("group contains the current op")
                    }
                    Err(e) => {
                        return Err(vec![ScheduleError::MissingKey {
                            op: id,
                            steps: e.steps.unwrap_or(*k),
                        }])
                    }
                }
            } else {
                let ga = cx.cipher(*a);
                let ca = ga.as_ref().expect("cipher operand evaluated");
                match ev.try_rotate(ca, *k) {
                    Ok(ct) => ct,
                    Err(_) => return Err(vec![ScheduleError::MissingKey { op: id, steps: *k }]),
                }
            };
            (id, out)
        }
        Op::Rescale(a) => {
            let ga = cx.cipher(*a);
            (
                id,
                ev.rescale(ga.as_ref().expect("cipher operand evaluated")),
            )
        }
        Op::ModSwitch(a) => {
            let ga = cx.cipher(*a);
            (
                id,
                ev.mod_switch(ga.as_ref().expect("cipher operand evaluated")),
            )
        }
        Op::Upscale(a, delta) => {
            let ga = cx.cipher(*a);
            let ca = ga.as_ref().expect("cipher operand evaluated");
            (id, ev.upscale(ca, 2f64.powf(delta.to_f64())))
        }
        Op::Const { .. } | Op::Input { .. } => unreachable!("handled in the prologue"),
    };
    let elapsed = t0.elapsed();
    debug_assert_eq!(
        ct.level as u32,
        cx.map.level(store_id),
        "backend level tracks schedule"
    );
    *cx.cipher_slots[store_id.index()]
        .write()
        .expect("slot lock") = Some(ct);
    cx.recycle_operands(id);
    // Fused pairs report only the mul here (charged the full kernel); the
    // rescale node retires itself with zero duration when it is popped.
    Ok(vec![(id, CostModel::classify(program, id), elapsed)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;
    use reserve_core::Options;

    fn inputs(pairs: &[(&str, Vec<f64>)]) -> HashMap<String, Vec<f64>> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn exec_opts() -> ExecOptions {
        ExecOptions {
            poly_degree: 256,
            seed: 3,
            threads: 1,
            ..ExecOptions::default()
        }
    }

    fn bits(outputs: &[Vec<f64>]) -> Vec<Vec<u64>> {
        outputs
            .iter()
            .map(|v| v.iter().map(|x| x.to_bits()).collect())
            .collect()
    }

    fn fig2a() -> ScheduledProgram {
        let slots = 128;
        let b = Builder::new("fig2a", slots);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        reserve_core::compile(&p, &Options::new(30))
            .unwrap()
            .scheduled
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_at_every_width() {
        let s = fig2a();
        let xs: Vec<f64> = (0..128).map(|i| ((i % 5) as f64 - 2.0) * 0.3).collect();
        let ys: Vec<f64> = (0..128).map(|i| ((i % 7) as f64) * 0.1).collect();
        let binds = inputs(&[("x", xs), ("y", ys)]);
        let serial = crate::ckks_exec::execute(&s, &binds, &exec_opts()).unwrap();
        for workers in [1usize, 2, 3, 8] {
            let par = execute_parallel(
                &s,
                &binds,
                &ParOptions {
                    exec: exec_opts(),
                    workers,
                    fusion: true,
                },
            )
            .unwrap();
            assert_eq!(
                bits(&par.outputs),
                bits(&serial.outputs),
                "workers = {workers}"
            );
            assert_eq!(par.ops_executed, serial.ops_executed);
            assert!(par.fused > 0, "fig2a has fusible mul→rescale chains");
            assert!(par.safety_obligations > 0);
        }
    }

    #[test]
    fn fusion_toggle_does_not_change_bytes() {
        let s = fig2a();
        let binds = inputs(&[("x", vec![0.5; 128]), ("y", vec![0.25; 128])]);
        let mk = |fusion| ParOptions {
            exec: exec_opts(),
            workers: 2,
            fusion,
        };
        let on = execute_parallel(&s, &binds, &mk(true)).unwrap();
        let off = execute_parallel(&s, &binds, &mk(false)).unwrap();
        assert!(on.fused > 0);
        assert_eq!(off.fused, 0);
        assert_eq!(bits(&on.outputs), bits(&off.outputs));
    }

    #[test]
    fn hoisted_rotation_groups_execute_at_the_leader() {
        let slots = 128;
        let b = Builder::new("rotgrp", slots);
        let x = b.input("x");
        let e = x.clone().rotate(1) + x.clone().rotate(2) + x.clone().rotate(3) + x;
        let p = b.finish(vec![e]);
        let mut options = Options::new(30);
        options.params.output_reserve_bits = 2;
        let s = reserve_core::compile(&p, &options).unwrap().scheduled;
        let xs: Vec<f64> = (0..slots).map(|i| i as f64 * 0.001).collect();
        let binds = inputs(&[("x", xs)]);
        let serial = crate::ckks_exec::execute(&s, &binds, &exec_opts()).unwrap();
        let par = execute_parallel(
            &s,
            &binds,
            &ParOptions {
                exec: exec_opts(),
                workers: 4,
                fusion: true,
            },
        )
        .unwrap();
        assert!(par.hoisted_groups > 0);
        assert_eq!(bits(&par.outputs), bits(&serial.outputs));
    }

    #[test]
    fn missing_keys_surface_as_schedule_errors_not_panics() {
        let slots = 128;
        let b = Builder::new("missing", slots);
        let x = b.input("x");
        let e = x.clone().rotate(1) + x.clone().rotate(3) + x;
        let p = b.finish(vec![e]);
        let mut options = Options::new(30);
        options.params.output_reserve_bits = 2;
        let s = reserve_core::compile(&p, &options).unwrap().scheduled;
        let xs: Vec<f64> = (0..slots).map(|i| i as f64 * 0.001).collect();
        let err = execute_parallel(
            &s,
            &inputs(&[("x", xs)]),
            &ParOptions {
                exec: ExecOptions {
                    keys: KeyPolicy::EagerSet(vec![1]),
                    ..exec_opts()
                },
                workers: 4,
                fusion: true,
            },
        )
        .unwrap_err();
        assert!(
            matches!(err[0], ScheduleError::MissingKey { steps: 3, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn session_keys_reuse_is_deterministic_across_executors() {
        let s = fig2a();
        let xs: Vec<f64> = (0..128).map(|i| ((i % 5) as f64 - 2.0) * 0.3).collect();
        let ys: Vec<f64> = (0..128).map(|i| ((i % 7) as f64) * 0.1).collect();
        let binds = inputs(&[("x", xs), ("y", ys)]);
        let opts = exec_opts();
        let keys = SessionKeys::for_schedule(&s, &opts).unwrap();
        let pool = Arc::new(PolyPool::new(opts.poly_degree));

        // Same enc_seed → byte-identical, across repeats and executors.
        let a = crate::ckks_exec::execute_with_keys(&s, &binds, &opts, &keys, None, 7).unwrap();
        let b =
            crate::ckks_exec::execute_with_keys(&s, &binds, &opts, &keys, Some(pool.clone()), 7)
                .unwrap();
        assert_eq!(bits(&a.outputs), bits(&b.outputs), "shared pool is inert");
        let par_opts = ParOptions {
            exec: opts.clone(),
            workers: 3,
            fusion: true,
        };
        let c = execute_parallel_with_keys(&s, &binds, &par_opts, &keys, Some(pool.clone()), 7)
            .unwrap();
        assert_eq!(
            bits(&a.outputs),
            bits(&c.outputs),
            "parallel with-keys path matches serial"
        );
        assert!(a.max_abs_error() < 1e-2);

        // A different enc_seed changes ciphertext noise but stays correct.
        let d = crate::ckks_exec::execute_with_keys(&s, &binds, &opts, &keys, None, 8).unwrap();
        assert_ne!(bits(&a.outputs), bits(&d.outputs));
        assert!(d.max_abs_error() < 1e-2);

        // Counter deltas over a shared pool: the second request's hits grow
        // because it recycles buffers the first returned.
        let stats = pool.stats();
        assert_eq!(stats.hits, b.mem.pool_hits + c.mem.pool_hits);
        assert!(c.mem.pool_hits > 0, "warm pool serves from the free list");
    }

    #[test]
    fn walk_telemetry_covers_every_cipher_op() {
        let s = fig2a();
        let binds = inputs(&[("x", vec![0.5; 128]), ("y", vec![0.25; 128])]);
        let par = execute_parallel(
            &s,
            &binds,
            &ParOptions {
                exec: exec_opts(),
                workers: 2,
                fusion: true,
            },
        )
        .unwrap();
        let class_count: usize = par.per_class.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(par.node_times.len(), class_count);
        assert!(par.walk_time <= par.op_time);
        assert!(par.op_time <= par.total_time);
        assert!(par.max_abs_error() < 1e-2);
        assert!(par.mem.peak_bytes > 0);
    }
}
