//! Fig. 8: performance breakdown of the proposed algorithms — BA (backward
//! analysis only), RA (+ reserve redistribution), and this work (+ rescale
//! hoisting) — normalized by BA, at waterlines 2^20 and 2^40.
//!
//! Expected shape (paper §8.3): redistribution (RA) helps benchmarks with
//! ciphertext×ciphertext products of *distinct* values (it cannot help
//! squarings, the bulk of the DL benchmarks); hoisting helps benchmarks
//! with external summations (image kernels, NNs) and not the rotation-heavy
//! internal summations of the regressions.
//!
//! `--json <path>` writes every (waterline, benchmark, mode) compile report.

use fhe_bench::{
    ablation_compilers, compile_all, geomean, json::Json, print_table, report_json, CliArgs,
};

fn main() {
    let args = CliArgs::parse();
    let suite = fhe_bench::selected_suite(&args);
    let compilers = ablation_compilers();
    let names: Vec<String> = compilers.iter().map(|c| c.name().to_string()).collect();

    let mut json_sweeps = Vec::new();
    for waterline in [20u32, 40] {
        println!(
            "Fig. 8{}: latency normalized by BA, waterline 2^{waterline}.\n",
            if waterline == 20 { "a" } else { "b" }
        );
        let mut headers = vec!["Benchmark"];
        headers.extend(names.iter().map(String::as_str));
        let mut rows = Vec::new();
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); compilers.len()];
        let mut json_rows = Vec::new();
        for w in &suite {
            eprintln!("ablating {} at W=2^{waterline} ...", w.name);
            let outs = compile_all(&compilers, &w.program, waterline);
            // By ablation_compilers convention the first entry (BA) is the
            // normalization baseline.
            let base = outs[0].report.estimated_latency_us;
            let mut row = vec![w.name.to_string()];
            for (i, out) in outs.iter().enumerate() {
                let r = out.report.estimated_latency_us / base;
                ratios[i].push(r);
                row.push(format!("{r:.3}"));
            }
            rows.push(row);
            json_rows.push(Json::obj([
                ("benchmark", Json::from(w.name)),
                (
                    "reports",
                    Json::Array(outs.iter().map(|o| report_json(&o.report)).collect()),
                ),
            ]));
        }
        let mut gmean_row = vec!["GMean".to_string()];
        gmean_row.extend(ratios.iter().map(|r| format!("{:.3}", geomean(r))));
        rows.push(gmean_row);
        print_table(&headers, &rows);
        println!();
        json_sweeps.push(Json::obj([
            ("waterline", Json::from(waterline)),
            (
                "geomeans",
                Json::Array(ratios.iter().map(|r| Json::from(geomean(r))).collect()),
            ),
            ("rows", Json::Array(json_rows)),
        ]));
    }
    println!("(paper: RA and this work achieve 9.1%/11.6% speedup over BA at W=2^20");
    println!(" and 7.4%/19.6% at W=2^40)");
    args.emit_json(&Json::obj([
        ("figure", Json::from("fig8")),
        (
            "modes",
            Json::Array(names.iter().map(|n| Json::from(n.as_str())).collect()),
        ),
        ("sweeps", Json::Array(json_sweeps)),
    ]));
}
