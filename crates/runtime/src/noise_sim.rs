//! Noise-injection simulator: executes a scheduled program on clear vectors
//! while injecting the RNS-CKKS noise each operation would add.
//!
//! RNS-CKKS noise is (to first order) *scale-independent* in the integer
//! domain: fresh encryption, relinearization (after cipher×cipher), Galois
//! key switching (rotation) and rescaling each add noise of roughly fixed
//! magnitude `B`, so the induced message error is `B / m` for a ciphertext
//! at scale `m` (§8.2 — the reason minimizing scales, as Hecate does,
//! *increases* error). The simulator reads each value's exact scale from
//! the validator and perturbs slots accordingly, which reproduces Fig. 7's
//! error comparison at a tiny fraction of a real encrypted execution's cost.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fhe_ir::{Op, ScheduleError, ScheduledProgram, ValueId};

use crate::plain;

/// Noise model configuration.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// log₂ of the integer-domain noise magnitude added by fresh
    /// encryption, relinearization, key switching and rescaling. With
    /// `N = 2^15` and σ = 3.2 this is ≈ 16–18 bits.
    pub noise_bits: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            noise_bits: 16.0,
            seed: 0x5EED,
        }
    }
}

/// Result of a noisy execution.
#[derive(Debug, Clone)]
pub struct NoisyRun {
    /// Noisy program outputs.
    pub outputs: Vec<Vec<f64>>,
    /// Noise-free reference outputs.
    pub reference: Vec<Vec<f64>>,
}

impl NoisyRun {
    /// Maximum absolute slot error across all outputs.
    pub fn max_abs_error(&self) -> f64 {
        self.outputs
            .iter()
            .zip(&self.reference)
            .flat_map(|(o, r)| o.iter().zip(r).map(|(a, b)| (a - b).abs()))
            .fold(0.0, f64::max)
    }

    /// Root-mean-square slot error across all outputs.
    pub fn rms_error(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (o, r) in self.outputs.iter().zip(&self.reference) {
            for (a, b) in o.iter().zip(r) {
                sum += (a - b) * (a - b);
                n += 1;
            }
        }
        (sum / n.max(1) as f64).sqrt()
    }

    /// log₂ of the maximum absolute error (Fig. 7's "Error(Log)" axis).
    pub fn log2_error(&self) -> f64 {
        self.max_abs_error().max(f64::MIN_POSITIVE).log2()
    }
}

/// Executes a scheduled program with injected noise.
///
/// # Errors
///
/// Returns the schedule's validation errors if it is not legal.
pub fn simulate(
    scheduled: &ScheduledProgram,
    inputs: &HashMap<String, Vec<f64>>,
    model: &NoiseModel,
) -> Result<NoisyRun, Vec<ScheduleError>> {
    let map = scheduled.validate()?;
    let program = &scheduled.program;
    let slots = program.slots();
    let mut rng = StdRng::seed_from_u64(model.seed);
    let live = fhe_ir::analysis::live(program);
    let noise_mag = 2f64.powf(model.noise_bits);

    let mut values: Vec<Option<Vec<f64>>> = vec![None; program.num_ops()];
    let fetch = |values: &Vec<Option<Vec<f64>>>, id: ValueId| -> Vec<f64> {
        values[id.index()].clone().expect("operand evaluated")
    };

    for id in program.ids() {
        if !live[id.index()] {
            continue;
        }
        let (mut result, noisy) = match program.op(id) {
            Op::Input { name } => {
                let data = inputs
                    .get(name)
                    .unwrap_or_else(|| panic!("missing input binding `{name}`"));
                let v: Vec<f64> = (0..slots)
                    .map(|i| data.get(i).copied().unwrap_or(0.0))
                    .collect();
                (v, true) // fresh encryption noise
            }
            Op::Const { value } => (value.to_vec(slots), false),
            Op::Add(a, b) => (
                fetch(&values, *a)
                    .iter()
                    .zip(&fetch(&values, *b))
                    .map(|(x, y)| x + y)
                    .collect(),
                false,
            ),
            Op::Sub(a, b) => (
                fetch(&values, *a)
                    .iter()
                    .zip(&fetch(&values, *b))
                    .map(|(x, y)| x - y)
                    .collect(),
                false,
            ),
            Op::Mul(a, b) => {
                let prod: Vec<f64> = fetch(&values, *a)
                    .iter()
                    .zip(&fetch(&values, *b))
                    .map(|(x, y)| x * y)
                    .collect();
                // Relinearization noise only for cipher×cipher.
                let relin = program.is_cipher(*a) && program.is_cipher(*b);
                (prod, relin)
            }
            Op::Neg(a) => (fetch(&values, *a).iter().map(|x| -x).collect(), false),
            Op::Rotate(a, k) => (plain::rotate(&fetch(&values, *a), *k), true),
            Op::Rescale(a) => (fetch(&values, *a), true),
            Op::ModSwitch(a) | Op::Upscale(a, _) => (fetch(&values, *a), false),
        };
        if noisy && program.is_cipher(id) {
            let scale = 2f64.powf(map.scale_bits(id).to_f64());
            let err = noise_mag / scale;
            for v in result.iter_mut() {
                *v += rng.gen_range(-1.0..1.0) * err;
            }
        }
        values[id.index()] = Some(result);
    }

    let outputs = program
        .outputs()
        .iter()
        .map(|&o| values[o.index()].clone().expect("output evaluated"))
        .collect();
    let reference = plain::execute(program, inputs);
    Ok(NoisyRun { outputs, reference })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;
    use reserve_core::Options;

    fn inputs(pairs: &[(&str, Vec<f64>)]) -> HashMap<String, Vec<f64>> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn fig2a_scheduled(waterline: u32) -> ScheduledProgram {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        reserve_core::compile(&p, &Options::new(waterline))
            .unwrap()
            .scheduled
    }

    #[test]
    fn noisy_outputs_stay_close_to_reference() {
        let s = fig2a_scheduled(30);
        let run = simulate(
            &s,
            &inputs(&[("x", vec![0.5; 8]), ("y", vec![0.25; 8])]),
            &NoiseModel::default(),
        )
        .unwrap();
        assert!(run.max_abs_error() < 1e-2, "error {}", run.max_abs_error());
        assert!(run.max_abs_error() > 0.0, "noise must actually be injected");
    }

    #[test]
    fn larger_waterline_means_smaller_error() {
        let binds = inputs(&[("x", vec![0.5; 8]), ("y", vec![0.25; 8])]);
        let e20 = simulate(&fig2a_scheduled(20), &binds, &NoiseModel::default())
            .unwrap()
            .log2_error();
        let e40 = simulate(&fig2a_scheduled(40), &binds, &NoiseModel::default())
            .unwrap()
            .log2_error();
        assert!(
            e40 < e20 - 10.0,
            "W=2^40 (err 2^{e40:.1}) must be far more accurate than W=2^20 (err 2^{e20:.1})"
        );
    }

    #[test]
    fn zero_noise_model_reproduces_reference() {
        let s = fig2a_scheduled(25);
        let run = simulate(
            &s,
            &inputs(&[("x", vec![1.5; 8]), ("y", vec![-0.5; 8])]),
            &NoiseModel {
                noise_bits: f64::NEG_INFINITY,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(run.max_abs_error(), 0.0);
    }

    #[test]
    fn rms_bounded_by_max() {
        let s = fig2a_scheduled(20);
        let run = simulate(
            &s,
            &inputs(&[("x", vec![0.9; 8]), ("y", vec![0.8; 8])]),
            &NoiseModel::default(),
        )
        .unwrap();
        assert!(run.rms_error() <= run.max_abs_error());
    }
}
