//! Static worst-case error estimation for scheduled programs.
//!
//! An extension beyond the paper (in the direction of its ELASM follow-up):
//! instead of *simulating* noise, propagate a per-value error bound through
//! the schedule. Each noisy operation (fresh encryption, relinearization,
//! key switching, rescale rounding) contributes `B/m` of message-domain
//! error for a ciphertext at scale `m`; arithmetic combines bounds
//! conservatively assuming slot magnitudes ≤ `magnitude_bound`.
//!
//! The transfer rules live in `fhe_analysis::NoiseDomain` (this module is
//! its [`MagnitudeSource::Global`](fhe_analysis::MagnitudeSource) instance);
//! the fuzz oracle runs the same domain with per-value interval magnitudes
//! for a tighter bound.
//!
//! The estimate upper-bounds the simulator's measured error and tracks its
//! shape across waterlines, giving compilers a closed-form error signal.

use fhe_analysis::{analyze, AnalysisCx, MagnitudeSource, NoiseDomain};
use fhe_ir::{ScheduleError, ScheduledProgram};

use crate::noise_sim::NoiseModel;

/// Options for the static estimate.
#[derive(Debug, Clone, Copy)]
pub struct ErrorEstimateOptions {
    /// The noise magnitudes to assume (shared with the simulator).
    pub model: NoiseModel,
    /// Assumed bound on slot magnitudes (`x_max` in the paper's Table 1).
    pub magnitude_bound: f64,
}

impl Default for ErrorEstimateOptions {
    fn default() -> Self {
        ErrorEstimateOptions {
            model: NoiseModel::default(),
            magnitude_bound: 1.0,
        }
    }
}

/// Statically estimates the worst-case absolute error of each program
/// output.
///
/// # Errors
///
/// Returns the schedule's validation errors if it is illegal.
pub fn estimate_error(
    scheduled: &ScheduledProgram,
    options: &ErrorEstimateOptions,
) -> Result<Vec<f64>, Vec<ScheduleError>> {
    let map = scheduled.validate()?;
    let program = &scheduled.program;
    let domain = NoiseDomain {
        noise_bits: options.model.noise_bits,
        magnitudes: MagnitudeSource::Global(options.magnitude_bound),
    };
    let err = analyze(&domain, &AnalysisCx::scheduled(program, &map));
    Ok(program.outputs().iter().map(|&o| err[o.index()]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise_sim::simulate;
    use fhe_ir::Builder;
    use reserve_core::Options;
    use std::collections::HashMap;

    fn fig2a_scheduled(waterline: u32) -> ScheduledProgram {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        let p = b.finish(vec![q]);
        reserve_core::compile(&p, &Options::new(waterline))
            .unwrap()
            .scheduled
    }

    #[test]
    fn estimate_upper_bounds_simulation() {
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![0.5; 8]);
        inputs.insert("y".to_string(), vec![0.25; 8]);
        for waterline in [20, 30, 40] {
            let s = fig2a_scheduled(waterline);
            let est = estimate_error(&s, &ErrorEstimateOptions::default()).unwrap()[0];
            let sim = simulate(&s, &inputs, &NoiseModel::default())
                .unwrap()
                .max_abs_error();
            assert!(
                est >= sim,
                "W={waterline}: static bound {est:.3e} below measured {sim:.3e}"
            );
            // The bound should not be absurdly loose (within ~4 orders).
            assert!(
                est < sim.max(f64::MIN_POSITIVE) * 1e4,
                "W={waterline}: bound too loose"
            );
        }
    }

    #[test]
    fn error_shrinks_with_waterline() {
        let e20 =
            estimate_error(&fig2a_scheduled(20), &ErrorEstimateOptions::default()).unwrap()[0];
        let e40 =
            estimate_error(&fig2a_scheduled(40), &ErrorEstimateOptions::default()).unwrap()[0];
        assert!(
            e40 < e20 / 1e4,
            "W=2^40 bound {e40:.3e} vs W=2^20 {e20:.3e}"
        );
    }

    #[test]
    fn plain_only_paths_are_error_free() {
        let b = Builder::new("p", 4);
        let x = b.input("x");
        let k = b.constant(2.0) * b.constant(3.0);
        let out = x + k;
        let p = b.finish(vec![out]);
        let s = reserve_core::compile(&p, &Options::new(30))
            .unwrap()
            .scheduled;
        let est = estimate_error(&s, &ErrorEstimateOptions::default()).unwrap()[0];
        // Only the fresh encryption noise of x contributes.
        assert!(est > 0.0 && est < 1e-3);
    }
}

/// Selects the smallest waterline (⇒ cheapest program) whose static error
/// bound meets `target_log2_error`, compiling each candidate with the given
/// closure (return `None` for waterlines that fail to compile).
///
/// Smaller waterlines mean lower levels and latency but larger relative
/// noise; this utility automates the accuracy/latency trade-off the paper's
/// Figs. 6 and 7 sweep by hand.
pub fn select_waterline<F>(
    candidates: impl IntoIterator<Item = u32>,
    mut compile: F,
    target_log2_error: f64,
    options: &ErrorEstimateOptions,
) -> Option<(u32, ScheduledProgram)>
where
    F: FnMut(u32) -> Option<ScheduledProgram>,
{
    let mut sorted: Vec<u32> = candidates.into_iter().collect();
    sorted.sort_unstable();
    for waterline in sorted {
        let Some(scheduled) = compile(waterline) else {
            continue;
        };
        let Ok(errors) = estimate_error(&scheduled, options) else {
            continue;
        };
        let worst = errors.iter().fold(0.0f64, |a, &b| a.max(b));
        if worst.max(f64::MIN_POSITIVE).log2() <= target_log2_error {
            return Some((waterline, scheduled));
        }
    }
    None
}

#[cfg(test)]
mod selection_tests {
    use super::*;
    use fhe_ir::Builder;
    use reserve_core::Options;

    fn program() -> fhe_ir::Program {
        let b = Builder::new("sel", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = (x.clone() * y.clone() + x) * y;
        b.finish(vec![q])
    }

    #[test]
    fn picks_smallest_sufficient_waterline() {
        let p = program();
        let compile = |wl: u32| {
            reserve_core::compile(&p, &Options::new(wl))
                .ok()
                .map(|c| c.scheduled)
        };
        let opts = ErrorEstimateOptions::default();
        // A loose target admits a small waterline; a strict one forces a
        // larger waterline; an impossible one yields None.
        let (loose, _) = select_waterline(15..=50, compile, -2.0, &opts).expect("feasible");
        let (strict, _) = select_waterline(15..=50, compile, -20.0, &opts).expect("feasible");
        assert!(strict > loose, "strict target {strict} vs loose {loose}");
        assert!(select_waterline(15..=50, compile, -200.0, &opts).is_none());
    }

    #[test]
    fn selected_schedule_meets_target() {
        let p = program();
        let compile = |wl: u32| {
            reserve_core::compile(&p, &Options::new(wl))
                .ok()
                .map(|c| c.scheduled)
        };
        let opts = ErrorEstimateOptions::default();
        let target = -12.0;
        let (_, scheduled) = select_waterline(15..=50, compile, target, &opts).unwrap();
        let worst = estimate_error(&scheduled, &opts).unwrap()[0];
        assert!(worst.log2() <= target);
    }
}
