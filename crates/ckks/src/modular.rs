//! 64-bit modular arithmetic for NTT-friendly primes.

/// A word-sized prime modulus with the arithmetic the scheme needs.
///
/// Products are computed through `u128`; this is slower than Shoup/Barrett
/// multiplication but keeps the code obviously correct, and the *relative*
/// op latencies (what the paper's Table 3 cares about) are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    q: u64,
}

impl Modulus {
    /// Wraps a modulus value.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2` or `q >= 2^62` (headroom for lazy additions).
    pub fn new(q: u64) -> Self {
        assert!(q >= 2, "modulus must be at least 2");
        assert!(q < 1 << 62, "modulus must leave headroom below 2^62");
        Modulus { q }
    }

    /// The modulus value.
    pub fn value(self) -> u64 {
        self.q
    }

    /// `(a + b) mod q` for operands already `< q`.
    #[inline]
    pub fn add(self, a: u64, b: u64) -> u64 {
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// `(a - b) mod q` for operands already `< q`.
    #[inline]
    pub fn sub(self, a: u64, b: u64) -> u64 {
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// `-a mod q` for `a < q`.
    #[inline]
    pub fn neg(self, a: u64) -> u64 {
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// `(a · b) mod q` for operands already `< q`.
    #[inline]
    pub fn mul(self, a: u64, b: u64) -> u64 {
        ((a as u128 * b as u128) % self.q as u128) as u64
    }

    /// Reduces an arbitrary `u64` into `[0, q)`.
    #[inline]
    pub fn reduce(self, a: u64) -> u64 {
        a % self.q
    }

    /// Reduces an arbitrary `u128` into `[0, q)`.
    #[inline]
    pub fn reduce_u128(self, a: u128) -> u64 {
        (a % self.q as u128) as u64
    }

    /// Reduces a signed value into `[0, q)`.
    #[inline]
    pub fn reduce_i64(self, a: i64) -> u64 {
        let r = a.rem_euclid(self.q as i64);
        r as u64
    }

    /// `a^e mod q` by square-and-multiply.
    pub fn pow(self, mut a: u64, mut e: u64) -> u64 {
        a %= self.q;
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, a);
            }
            a = self.mul(a, a);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse of `a` (requires `q` prime and `a ≠ 0 mod q`).
    ///
    /// # Panics
    ///
    /// Panics if `a ≡ 0 (mod q)`.
    pub fn inv(self, a: u64) -> u64 {
        let a = a % self.q;
        assert!(a != 0, "no inverse of 0");
        // Fermat: a^(q-2) mod q.
        self.pow(a, self.q - 2)
    }

    /// Lifts a residue to the centered representative in `(-q/2, q/2]`.
    #[inline]
    pub fn center(self, a: u64) -> i64 {
        if a > self.q / 2 {
            a as i64 - self.q as i64
        } else {
            a as i64
        }
    }

    /// Reduces an `f64` (|x| possibly ≫ 2^64, e.g. a coefficient scaled by
    /// 2^80) into `[0, q)`, exactly for the 53-bit mantissa and with exact
    /// modular handling of the binary exponent.
    pub fn reduce_f64(self, x: f64) -> u64 {
        assert!(x.is_finite(), "cannot reduce non-finite value");
        if x == 0.0 {
            return 0;
        }
        // x = mant · 2^exp with mant an integer |mant| < 2^53.
        let bits = x.abs();
        let exp = bits.log2().floor() as i32 - 52;
        let mant = (bits / 2f64.powi(exp)).round() as u64;
        // Guard against rounding at the boundary.
        debug_assert!((mant as f64 * 2f64.powi(exp) - bits).abs() <= 2f64.powi(exp));
        let mant_mod = self.reduce(mant);
        let two_exp = if exp >= 0 {
            self.pow(2, exp as u64)
        } else {
            self.inv(self.pow(2, (-exp) as u64))
        };
        let mag = self.mul(mant_mod, two_exp);
        if x < 0.0 {
            self.neg(mag)
        } else {
            mag
        }
    }
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let m = Modulus::new(n);
    let mut d = n - 1;
    let mut r = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    // This witness set is deterministic for all 64-bit integers.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = m.pow(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = m.mul(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = (1 << 61) - 1; // not NTT-friendly, fine for arithmetic

    #[test]
    fn add_sub_neg() {
        let m = Modulus::new(17);
        assert_eq!(m.add(9, 12), 4);
        assert_eq!(m.sub(3, 5), 15);
        assert_eq!(m.neg(0), 0);
        assert_eq!(m.neg(5), 12);
    }

    #[test]
    fn mul_pow_inv() {
        let m = Modulus::new(Q);
        let a = 123456789012345678u64 % Q;
        assert_eq!(m.mul(a, 1), a);
        assert_eq!(m.pow(a, 0), 1);
        assert_eq!(m.pow(a, 3), m.mul(m.mul(a, a), a));
        let inv = m.inv(a);
        assert_eq!(m.mul(a, inv), 1);
    }

    #[test]
    fn center_lifts_symmetrically() {
        let m = Modulus::new(101);
        assert_eq!(m.center(0), 0);
        assert_eq!(m.center(50), 50);
        assert_eq!(m.center(51), -50);
        assert_eq!(m.center(100), -1);
    }

    #[test]
    fn reduce_i64_handles_negatives() {
        let m = Modulus::new(101);
        assert_eq!(m.reduce_i64(-1), 100);
        assert_eq!(m.reduce_i64(-101), 0);
        assert_eq!(m.reduce_i64(205), 3);
    }

    #[test]
    fn reduce_f64_matches_integer_reduction() {
        let m = Modulus::new(Q);
        for &x in &[
            0.0,
            1.0,
            -1.0,
            123456789.0,
            -987654321.0,
            2f64.powi(80),
            -2f64.powi(75),
        ] {
            let r = m.reduce_f64(x);
            if x.abs() < 2f64.powi(53) {
                assert_eq!(r, m.reduce_i64(x as i64), "x = {x}");
            }
            assert!(r < Q);
        }
        // 2^80 mod q computed independently.
        let expect = m.pow(2, 80);
        assert_eq!(m.reduce_f64(2f64.powi(80)), expect);
        assert_eq!(m.reduce_f64(-(2f64.powi(80))), m.neg(expect));
    }

    #[test]
    fn reduce_f64_fractional_scale() {
        // 1.5 · 2^61 is representable; check against exact integer math.
        let m = Modulus::new(Q);
        let x = 3.0 * 2f64.powi(60);
        let expect = m.mul(3, m.pow(2, 60));
        assert_eq!(m.reduce_f64(x), expect);
    }

    #[test]
    fn primality() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(1));
        assert!(!is_prime(561)); // Carmichael
        assert!(is_prime((1 << 61) - 1)); // Mersenne prime
        assert!(!is_prime((1u64 << 60) + 1));
    }
}
