//! Key material: secret/public keys, relinearization and Galois keys.
//!
//! Key switching follows the special-prime RNS construction: for each chain
//! limb `j`, the switching key encrypts `T_j · t(X)` over the extended
//! modulus `Q·P`, where `T_j ≡ P·δ_{ij} (mod q_i)` and `T_j ≡ 0 (mod P)`.
//! Decomposing a polynomial into its RNS residues, multiplying by the key
//! components, and dividing by `P` then yields an encryption of `d·t` with
//! only additive noise `≈ Σ_j q_j·e_j / P`.

use rand::Rng;

use crate::context::CkksContext;
use crate::poly::RnsPoly;

/// The secret key `s` (ternary), stored over the full basis `Q·P`, NTT.
#[derive(Debug, Clone)]
pub struct SecretKey {
    pub(crate) s: RnsPoly,
}

/// A public encryption key `(p0, p1) = (−a·s − e, a)` over `Q` (no `P`).
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) p0: RnsPoly,
    pub(crate) p1: RnsPoly,
}

/// One key-switching key: per chain limb `j`, a pair over `Q·P` with
/// `k0_j + k1_j·s = T_j·t + e_j`.
#[derive(Debug, Clone)]
pub struct KswKey {
    pub(crate) k0: Vec<RnsPoly>,
    pub(crate) k1: Vec<RnsPoly>,
}

/// Relinearization key: switches `s²` back to `s` after multiplication.
#[derive(Debug, Clone)]
pub struct RelinKey(pub(crate) KswKey);

/// Galois keys: per Galois element `g`, switches `s(X^g)` back to `s`.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    pub(crate) keys: std::collections::HashMap<usize, KswKey>,
}

impl GaloisKeys {
    /// The key for Galois element `g`, if generated.
    pub fn get(&self, g: usize) -> Option<&KswKey> {
        self.keys.get(&g)
    }

    /// Galois elements covered by this key set.
    pub fn elements(&self) -> impl Iterator<Item = usize> + '_ {
        self.keys.keys().copied()
    }
}

/// The Galois element realizing a rotation of the slot vector by `steps`
/// (positive = towards lower slot indices), i.e. `5^steps mod 2N`.
pub fn rotation_to_galois(ctx: &CkksContext, steps: i64) -> usize {
    let n2 = 2 * ctx.degree();
    let slots = ctx.slots() as i64;
    let k = steps.rem_euclid(slots) as usize;
    let mut g = 1usize;
    for _ in 0..k {
        g = (g * 5) % n2;
    }
    g
}

/// Generates all key material for a context.
#[derive(Debug)]
pub struct KeyGenerator<'c> {
    ctx: &'c CkksContext,
    sk: SecretKey,
}

impl<'c> KeyGenerator<'c> {
    /// Samples a fresh ternary secret key.
    pub fn new(ctx: &'c CkksContext, rng: &mut impl Rng) -> Self {
        let mut s = RnsPoly::ternary(ctx, ctx.max_level(), true, rng);
        s.to_ntt(ctx);
        KeyGenerator {
            ctx,
            sk: SecretKey { s },
        }
    }

    /// The secret key (needed for decryption).
    pub fn secret_key(&self) -> SecretKey {
        self.sk.clone()
    }

    /// Generates the public encryption key.
    pub fn public_key(&self, rng: &mut impl Rng) -> PublicKey {
        let ctx = self.ctx;
        let l = ctx.max_level();
        let a = {
            let mut a = RnsPoly::uniform(ctx, l, true, rng);
            a.drop_to_level(l); // public key lives over Q only
            a
        };
        let mut e = RnsPoly::gaussian(ctx, l, false, rng);
        e.to_ntt(ctx);
        let mut s_q = self.sk.s.clone();
        s_q.drop_to_level(l);
        // p0 = −a·s − e.
        let mut p0 = a.mul(ctx, &s_q);
        p0.neg_assign(ctx);
        p0.sub_assign(ctx, &e);
        PublicKey { p0, p1: a }
    }

    /// Builds a key-switching key from source secret `t` to the main secret
    /// `s` (both over `Q·P`, NTT).
    fn ksw_key(&self, t: &RnsPoly, rng: &mut impl Rng) -> KswKey {
        let ctx = self.ctx;
        let l = ctx.max_level();
        let p = ctx.special().value();
        let mut k0 = Vec::with_capacity(l);
        let mut k1 = Vec::with_capacity(l);
        for j in 0..l {
            let a = RnsPoly::uniform(ctx, l, true, rng);
            let mut e = RnsPoly::gaussian(ctx, l, true, rng);
            e.to_ntt(ctx);
            // body = −a·s + e + T_j·t, where T_j has residue (P mod q_j) on
            // limb j and 0 elsewhere (including the special limb).
            let mut body = a.mul(ctx, &self.sk.s);
            body.neg_assign(ctx);
            body.add_assign(ctx, &e);
            let tj = {
                let qj = ctx.moduli()[j];
                let factor = qj.reduce(p);
                let factor_shoup = qj.shoup(factor);
                // Zero on all limbs except j, where it is (P mod q_j)·t.
                let mut tj = RnsPoly::zero(ctx, l, true, true);
                for (dst, &src) in tj.limb_mut(j).iter_mut().zip(t.limb(j)) {
                    *dst = qj.mul_shoup(src, factor, factor_shoup);
                }
                tj
            };
            body.add_assign(ctx, &tj);
            k0.push(body);
            k1.push(a);
        }
        KswKey { k0, k1 }
    }

    /// Generates the relinearization key (switches `s²` to `s`).
    pub fn relin_key(&self, rng: &mut impl Rng) -> RelinKey {
        let s2 = self.sk.s.mul(self.ctx, &self.sk.s);
        RelinKey(self.ksw_key(&s2, rng))
    }

    /// Generates Galois keys for the given slot-rotation steps.
    pub fn galois_keys(
        &self,
        steps: impl IntoIterator<Item = i64>,
        rng: &mut impl Rng,
    ) -> GaloisKeys {
        let mut keys = std::collections::HashMap::new();
        let mut rng = rng;
        for step in steps {
            let g = rotation_to_galois(self.ctx, step);
            if g == 1 || keys.contains_key(&g) {
                continue;
            }
            // Key switches s(X^g) to s.
            let mut sg = self.sk.s.clone();
            sg.automorphism(self.ctx, g);
            keys.insert(g, self.ksw_key(&sg, &mut rng));
        }
        GaloisKeys { keys }
    }
}

impl<'c> KeyGenerator<'c> {
    /// Generates the complex-conjugation key (Galois element `2N − 1`)
    /// alongside keys for the given rotation steps.
    pub fn galois_keys_with_conjugation(
        &self,
        steps: impl IntoIterator<Item = i64>,
        rng: &mut impl Rng,
    ) -> GaloisKeys {
        let mut keys = self.galois_keys(steps, rng);
        let g = 2 * self.ctx.degree() - 1;
        keys.keys.entry(g).or_insert_with(|| {
            let mut sg = self.sk.s.clone();
            sg.automorphism(self.ctx, g);
            self.ksw_key(&sg, rng)
        });
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{CkksContext, CkksParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        CkksContext::new(CkksParams {
            poly_degree: 64,
            max_level: 2,
            modulus_bits: 45,
            special_bits: 46,
            error_std: 3.2,
            threads: 1,
        })
    }

    #[test]
    fn rotation_galois_elements() {
        let ctx = ctx();
        assert_eq!(rotation_to_galois(&ctx, 0), 1);
        assert_eq!(rotation_to_galois(&ctx, 1), 5);
        assert_eq!(rotation_to_galois(&ctx, 2), 25);
        // Negative steps wrap modulo slot count.
        let slots = ctx.slots() as i64;
        assert_eq!(
            rotation_to_galois(&ctx, -1),
            rotation_to_galois(&ctx, slots - 1)
        );
    }

    #[test]
    fn public_key_is_pseudo_encryption_of_zero() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(7);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        // p0 + p1·s = −e: small.
        let mut s = kg.secret_key().s;
        s.drop_to_level(ctx.max_level());
        let mut acc = pk.p1.mul(&ctx, &s);
        acc.add_assign(&ctx, &pk.p0);
        acc.to_coeff(&ctx);
        let m = ctx.moduli()[0];
        for &c in acc.limb(0) {
            assert!(
                m.center(c).abs() < 64,
                "pk noise too large: {}",
                m.center(c)
            );
        }
    }

    #[test]
    fn galois_keys_skip_identity_and_dedup() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(8);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let gk = kg.galois_keys([0i64, 1, 1, 2], &mut rng);
        let mut els: Vec<usize> = gk.elements().collect();
        els.sort_unstable();
        assert_eq!(els, vec![5, 25]);
        assert!(gk.get(5).is_some());
        assert!(gk.get(1).is_none());
    }
}
