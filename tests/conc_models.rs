//! Model-checked protocol suite (checker builds only): the `fhe-conc`
//! deterministic scheduler driving the workspace's real concurrent
//! protocols and their distilled skeletons.
//!
//! Two planted regressions anchor the suite — the checker must *find*
//! them, not merely pass the fixed code:
//!
//! - the PR 7 scan→park race in the work-stealing pool (a worker that
//!   parks without re-checking the submission version sleeps through a
//!   concurrent push: lost wakeup);
//! - the PR 9 submit/shutdown race in the serve layer (a submitter that
//!   only checks the shutdown flag before taking the queue lock strands
//!   its ticket on a drained queue).
//!
//! The fixed protocols then pass exhaustively (small models) or across
//! committed PCT seeds (the real `Pool`/`CompileCache`/`PolyPool` types,
//! whose per-execution step counts are too large for full enumeration).
//!
//! Run with: `RUSTFLAGS="--cfg fhe_conc" cargo test --test conc_models`
//! (the `conc-smoke` CI job; in ordinary builds this file is empty).
#![cfg(fhe_conc)]

use std::collections::HashMap;
use std::sync::Mutex as StdMutex;

use fhe_ckks::par::conc_model::park_model;
use fhe_ckks::{PolyPool, Pool};
use fhe_conc::sync::atomic::{AtomicUsize, Ordering};
use fhe_conc::sync::{thread, Arc};
use fhe_conc::{check, Config, FailureKind, Mode};
use fhe_ir::{text, CompileParams};
use fhe_serve::server::conc_model::{quarantine_admission_model, submit_shutdown_model};
use fhe_serve::CompileCache;
use reserve_core::ReserveCompiler;

/// Fixed PCT seed for the large-model tier; committed so CI failures
/// replay bit-identically (`Config::pct` derives per-execution seeds from
/// it deterministically).
const PCT_SEED: u64 = 0x5EED_CAFE_F00D_0001;
/// Schedules per PCT model (the issue's acceptance floor).
const PCT_EXECUTIONS: u64 = 200;

fn exhaustive() -> Config {
    Config::exhaustive()
}

/// Unbounded exhaustive search for the small skeletons: no preemption
/// bound, so `complete` means every interleaving (modulo sleep-set
/// equivalence) was visited.
fn exhaustive_unbounded() -> Config {
    Config {
        mode: Mode::Exhaustive {
            max_executions: 200_000,
            preemption_bound: None,
        },
        max_steps: 50_000,
    }
}

fn pct() -> Config {
    Config::pct(PCT_SEED, PCT_EXECUTIONS)
}

// ---------------------------------------------------------------------
// Work-stealing pool: scan→park protocol (PR 7 race)
// ---------------------------------------------------------------------

#[test]
fn park_without_version_check_loses_the_wakeup() {
    let outcome = check("park-unversioned", exhaustive(), || park_model(false));
    let failure = outcome
        .failure
        .expect("the checker must rediscover the scan→park race");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { lost_wakeup: true }),
        "the race manifests as a lost wakeup, got {failure:?}"
    );
    assert!(
        !failure.trace.is_empty(),
        "a replayable counterexample schedule is recorded"
    );
}

#[test]
fn versioned_park_protocol_passes_exhaustively() {
    let outcome = check("park-versioned", exhaustive_unbounded(), || {
        park_model(true)
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert!(outcome.complete, "small model fully explored");
    assert!(outcome.executions >= 2);
}

#[test]
fn real_pool_run_and_drop_pass_under_pct() {
    // The shipped Pool end-to-end: spawn one worker, run a two-job batch
    // (submitter participates in its own batch), then drop — the drop
    // must wake and retire the parked worker in every sampled schedule.
    let outcome = check("pool-run-drop", pct(), || {
        let pool = Pool::new(1);
        let hits = AtomicUsize::new(0);
        pool.run(2, 2, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2, "every job ran exactly once");
        drop(pool);
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert_eq!(outcome.executions, PCT_EXECUTIONS);
}

// ---------------------------------------------------------------------
// Serve layer: enqueue/shutdown (PR 9 race) and quarantine admission
// ---------------------------------------------------------------------

#[test]
fn submit_without_under_lock_recheck_strands_a_ticket() {
    let outcome = check("submit-shutdown-unchecked", exhaustive(), || {
        submit_shutdown_model(false)
    });
    let failure = outcome
        .failure
        .expect("the checker must rediscover the submit/shutdown race");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "the stranded ticket leaves its submitter blocked forever, got {failure:?}"
    );
}

#[test]
fn submit_shutdown_with_recheck_passes_exhaustively() {
    let outcome = check("submit-shutdown-fixed", exhaustive(), || {
        submit_shutdown_model(true)
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert!(outcome.executions >= 2);
}

#[test]
fn quarantine_admission_is_ordered_exhaustively() {
    let outcome = check("quarantine-admission", exhaustive(), || {
        quarantine_admission_model()
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert!(outcome.executions >= 2);
}

// ---------------------------------------------------------------------
// Compile cache: single-flight and LRU admission on the real type
// ---------------------------------------------------------------------

fn tiny_program(name: &str) -> fhe_ir::Program {
    let b = fhe_ir::Builder::new(name, 4);
    let x = b.input("x");
    let y = b.input("y");
    text::parse(&text::print(&b.finish(vec![x * y]))).expect("round-trips")
}

#[test]
fn cold_key_compiles_exactly_once_in_every_interleaving() {
    // Two threads race get_or_compile on the same cold key. The
    // single-flight claim must serialize them into exactly one compile
    // and one hit, and both must share the same scheduled program.
    let outcome = check("cache-single-flight", exhaustive(), || {
        let cache = Arc::new(CompileCache::new(None));
        let program = Arc::new(tiny_program("sf"));
        let params = CompileParams::new(30);
        let t = {
            let (cache, program, params) = (cache.clone(), program.clone(), params.clone());
            thread::spawn(move || {
                let compiler = ReserveCompiler::full();
                cache
                    .get_or_compile(&program, &params, &compiler)
                    .expect("compiles")
                    .scheduled
            })
        };
        let compiler = ReserveCompiler::full();
        let mine = cache
            .get_or_compile(&program, &params, &compiler)
            .expect("compiles")
            .scheduled;
        let theirs = t.join().expect("peer compiles");
        assert!(
            Arc::ptr_eq(&mine, &theirs),
            "both callers share one cached schedule"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one compile");
        assert_eq!(stats.hits, 1, "the loser of the flight race hits");
        assert_eq!(stats.entries, 1);
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert!(
        outcome.executions >= 2,
        "the flight race has more than one schedule"
    );
}

#[test]
fn lru_never_evicts_the_just_inserted_entry_under_contention() {
    // A budget far below one entry forces an eviction decision on every
    // insert; the `e.tick != tick` filter must keep the entry that was
    // inserted by the *current* lookup, in every interleaving of two
    // threads inserting distinct keys.
    let outcome = check("cache-lru-admission", pct(), || {
        let cache = Arc::new(CompileCache::new(Some(1)));
        let t = {
            let cache = cache.clone();
            thread::spawn(move || {
                let compiler = ReserveCompiler::full();
                let program = tiny_program("lru-a");
                cache
                    .get_or_compile(&program, &CompileParams::new(30), &compiler)
                    .expect("compiles despite the tiny budget")
            })
        };
        let compiler = ReserveCompiler::full();
        let program = tiny_program("lru-b");
        cache
            .get_or_compile(&program, &CompileParams::new(30), &compiler)
            .expect("compiles despite the tiny budget");
        t.join().expect("peer compiles");
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert!(
            stats.entries >= 1,
            "the most recent insert always survives its own eviction pass"
        );
        assert_eq!(
            stats.evictions as usize + stats.entries,
            2,
            "every inserted entry is either cached or counted evicted"
        );
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert_eq!(outcome.executions, PCT_EXECUTIONS);
}

// ---------------------------------------------------------------------
// Poly pool: counter exactness at quiescence
// ---------------------------------------------------------------------

#[test]
fn pool_counters_are_exact_in_every_interleaving() {
    const DEGREE: usize = 8;
    const LIMB_BYTES: u64 = (DEGREE * 8) as u64;
    let outcome = check("polypool-counters", exhaustive(), || {
        let pool = Arc::new(PolyPool::new(DEGREE));
        let worker = {
            let pool = pool.clone();
            thread::spawn(move || {
                let bufs = pool.take_raw(1);
                pool.put(bufs);
            })
        };
        let bufs = pool.take_raw(2);
        pool.put(bufs);
        worker.join().expect("worker balances its traffic");
        // Quiescence: both threads joined, so the exactness claims in the
        // module docs must hold as cross-field invariants.
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 3, "every checkout counted once");
        assert_eq!(s.returns, 3, "every buffer returned exactly once");
        assert_eq!(s.live_bytes, 0, "balanced take/put leaves nothing live");
        assert!(
            s.peak_bytes >= 2 * LIMB_BYTES && s.peak_bytes <= 3 * LIMB_BYTES,
            "peak brackets the true high-water mark, got {}",
            s.peak_bytes
        );
        assert_eq!(
            s.free_bytes,
            (s.returns - s.hits) * LIMB_BYTES,
            "parked bytes equal net returns"
        );
        assert_eq!(
            pool.parked_buffers() as u64 * LIMB_BYTES,
            s.free_bytes,
            "shard contents sum to the global free-byte counter"
        );
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert!(
        outcome.executions >= 2,
        "shard traffic interleaves in more than one order"
    );
}

// ---------------------------------------------------------------------
// Exploration sanity on this suite's own scale
// ---------------------------------------------------------------------

#[test]
fn exhaustive_models_here_really_explore_multiple_schedules() {
    // Meta-check: the park skeleton visits both the race window and the
    // benign orders; recording distinct first-parked-thread observations
    // guards against a scheduler regression that silently serializes.
    let observed: Arc<StdMutex<HashMap<&'static str, u64>>> =
        Arc::new(StdMutex::new(HashMap::new()));
    let observed2 = observed.clone();
    let outcome = check("exploration-sanity", exhaustive_unbounded(), move || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.store(1, Ordering::SeqCst));
        let label = if x.load(Ordering::SeqCst) == 0 {
            "load-first"
        } else {
            "store-first"
        };
        *observed2.lock().unwrap().entry(label).or_insert(0) += 1;
        t.join().expect("joins");
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    let observed = observed.lock().unwrap();
    assert!(
        observed.contains_key("load-first") && observed.contains_key("store-first"),
        "both orders visited: {observed:?}"
    );
}
