//! # fhe-ckks — a from-scratch RNS-CKKS implementation
//!
//! A self-contained Rust implementation of the RNS variant of the CKKS
//! approximate homomorphic encryption scheme (Cheon et al., SAC'18),
//! standing in for Microsoft SEAL as the backend of the Reserve compiler
//! reproduction. It provides:
//!
//! - modular arithmetic and negacyclic [`ntt`] over NTT-friendly primes;
//! - RNS polynomials ([`poly::RnsPoly`]) kept in the evaluation domain,
//!   with exact RNS rescaling and Galois automorphisms;
//! - canonical-embedding [`encoding`] of real slot vectors;
//! - key generation ([`KeyGenerator`]) including relinearization and Galois keys
//!   via special-prime key switching; and
//! - an [`eval::Evaluator`] with every operation of the paper's Table 2:
//!   add, sub, neg, mul (cipher/plain), rotate, `rescale`, `modswitch`,
//!   `upscale`.
//!
//! Because every operation's cost is dominated by per-limb NTT and
//! pointwise work, latency grows with ciphertext level exactly as in the
//! paper's Table 3 — that shape is what the benchmark harness measures.
//!
//! **Security note:** parameters here are chosen for experimentation and
//! benchmarking, not audited for production security.
//!
//! # Example
//!
//! ```
//! use fhe_ckks::{CkksContext, CkksParams, Encoder, Evaluator, KeyGenerator,
//!                encrypt_symmetric, decrypt, GaloisKeys};
//! use rand::SeedableRng;
//! let ctx = CkksContext::new(CkksParams { poly_degree: 256, max_level: 2,
//!     modulus_bits: 45, special_bits: 46, error_std: 3.2, threads: 1 });
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let kg = KeyGenerator::new(&ctx, &mut rng);
//! let sk = kg.secret_key();
//! let ev = Evaluator::new(&ctx, Some(kg.relin_key(&mut rng)), GaloisKeys::default());
//! let pt = ev.encoder().encode(&[1.5, -2.0], 2f64.powi(40), 2);
//! let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
//! let sq = ev.rescale(&ev.square(&ct));
//! let out = ev.encoder().decode(&decrypt(&ctx, &sk, &sq));
//! assert!((out[0] - 2.25).abs() < 1e-3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bigint;
mod cipher;
mod context;
pub mod encoding;
mod eval;
mod keys;
pub mod modular;
pub mod ntt;
pub mod par;
pub mod poly;
pub mod pool;
pub mod primes;
pub mod security;
pub mod serialize;

pub use cipher::{decrypt, encrypt_public, encrypt_symmetric, Ciphertext};
pub use context::{CkksContext, CkksParams};
pub use encoding::{Encoder, Plaintext};
pub use eval::{Evaluator, MissingKeyError};
pub use keys::{
    rotation_to_galois, GaloisKeys, KeyCache, KeyCacheStats, KeyGenerator, PublicKey, RelinKey,
    SecretKey,
};
pub use par::Pool;
pub use pool::{PolyPool, PoolStats};
