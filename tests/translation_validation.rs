//! Translation validation across the paper's full benchmark suite: every
//! compiler's schedule for every workload must bisimulate its source
//! program modulo inserted scale management, and the verdict must be
//! recorded in the compile report by the pipeline's
//! `translation-validate` pass.

use fhe_reserve::prelude::*;

/// The three compilers, with a small fixed Hecate budget so the suite
/// stays fast and deterministic.
fn compilers() -> Vec<Box<dyn ScaleCompiler>> {
    vec![
        Box::new(EvaCompiler),
        Box::new(HecateCompiler {
            options: HecateOptions {
                max_iterations: 100,
                patience: 100,
                seed: 11,
                ..HecateOptions::default()
            },
        }),
        Box::new(ReserveCompiler::full()),
    ]
}

#[test]
fn every_compiler_validates_on_every_workload() {
    let params = CompileParams::new(30);
    for workload in suite(Size::Test) {
        for compiler in compilers() {
            let out = compiler
                .compile(&workload.program, &params)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", compiler.name(), workload.name));
            assert_eq!(
                out.report.translation_validated,
                Some(true),
                "{} on {} failed translation validation",
                compiler.name(),
                workload.name
            );
            // The direct checker agrees with the recorded verdict.
            let direct = fhe_reserve::analysis::validate(&workload.program, &out.scheduled);
            assert!(
                direct.is_ok(),
                "{} on {}: {:?}",
                compiler.name(),
                workload.name,
                direct.err()
            );
        }
    }
}
