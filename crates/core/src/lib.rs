//! # reserve-core — performance-aware scale analysis with reserve
//!
//! The primary contribution of *"Performance-aware Scale Analysis with
//! Reserve for Homomorphic Encryption"* (ASPLOS 2024): an exploration-free,
//! performance-aware scale-management compiler for RNS-CKKS programs.
//!
//! The pipeline:
//!
//! 1. **Allocation ordering** ([`ordering`], §6.1) — estimate each op's
//!    latency from its multiplicative depth and visit heavy dependence
//!    chains first.
//! 2. **Reserve allocation** ([`alloc`], §6.2) — walk backward from the
//!    outputs, assigning each ciphertext a *reserve* `ρ = log_R(Q/m)` from
//!    the typing rules of Fig. 5.
//! 3. **Reserve redistribution** ([`alloc`], §6.3) — shave avoidable level
//!    mismatches off multiplications by shifting budget to sibling operands.
//! 4. **Type checking** ([`types`], §5) — independently certify the
//!    solution against the reserve type system.
//! 5. **Rescale placement** ([`placement`], §7) — materialize the solution
//!    with `rescale`/`modswitch`/`upscale` ops.
//! 6. **Rescale hoisting** ([`hoist`], §7) — merge rescales past additions
//!    when the cost model says it pays.
//!
//! # Example
//!
//! Compile the paper's running example `x³ · (y² + y)`:
//!
//! ```
//! use fhe_ir::Builder;
//! use reserve_core::{compile, Options};
//! let b = Builder::new("example", 4096);
//! let x = b.input("x");
//! let y = b.input("y");
//! let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
//! let program = b.finish(vec![q]);
//! let out = compile(&program, &Options::new(20))?;
//! assert_eq!(out.report.max_level, 2);
//! # Ok::<(), reserve_core::CompileError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
mod compiler;
pub mod hoist;
pub mod ordering;
pub mod placement;
pub mod types;

pub use alloc::{allocate, ReserveSolution};
pub use compiler::{
    compile, Compiled, Mode, Options, OrderingStrategy, ReserveCompiler, WorkingSet,
};
pub use fhe_ir::pipeline::{CompileError, CompileReport, ScaleCompiler};
pub use ordering::{allocation_order, naive_order, AllocationOrder};
pub use placement::place;
