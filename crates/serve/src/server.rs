//! The request scheduler: a bounded job queue drained by a fixed pool of
//! service workers, each request compiled through the shared
//! [`CompileCache`] and executed with its session's keys against the
//! shared per-degree polynomial pools.
//!
//! Ordering and determinism: a request's encryption seed is derived from
//! its session's seed and its *submission* sequence number
//! ([`request_seed`]), and encrypted outputs are a pure function of
//! (schedule, inputs, keys, seed). Worker interleaving therefore cannot
//! change any response byte — the concurrency suite replays runs serially
//! and compares exact bytes.
//!
//! Fault isolation: the whole request pipeline — parse, compile, key
//! generation, execution — runs under one `catch_unwind`, so a panic in
//! *any* stage (a compiler panic on a degenerate program, a keygen assert
//! on out-of-range [`CompileParams`], an executor panic on a malformed
//! binding) is returned as [`ServeError::ExecutorPanic`] and quarantines
//! the owning session only; the compile cache and shared pools are
//! untouched (their panic-time cleanup runs on unwind — see
//! `FlightClaim` in `cache.rs` — and the executor's panic sites do not
//! hold their locks), so other sessions keep serving.

use fhe_conc::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use fhe_conc::sync::thread::JoinHandle;
use fhe_conc::sync::{thread, Arc, Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use fhe_ckks::PolyPool;
use fhe_ir::pipeline::ScaleCompiler;
use fhe_ir::{text, CompileParams};
use fhe_runtime::{execute_parallel_with_keys, MemStats, ParOptions};

use crate::cache::CompileCache;
use crate::error::ServeError;
use crate::session::{request_seed, Session, SessionId, SessionStore};
use crate::stats::{LatencyHistogram, PoolSnapshot, ServeStats};

/// Resolves a compiler id from the service registry. Ids are the
/// lower-case names clients put in [`Request::compiler`]:
/// `"reserve"`/`"this-work"`, `"eva"`, `"hecate"`.
pub fn compiler_for(id: &str) -> Option<Box<dyn ScaleCompiler>> {
    match id {
        "reserve" | "this-work" => Some(Box::new(reserve_core::ReserveCompiler::full())),
        "eva" => Some(Box::new(fhe_baselines::EvaCompiler)),
        "hecate" => Some(Box::new(fhe_baselines::HecateCompiler {
            options: fhe_baselines::HecateOptions::default(),
        })),
        _ => None,
    }
}

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Service worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue capacity; [`FheServer::submit`] blocks when full
    /// (backpressure), [`FheServer::try_submit`] fails with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to requests that set none (`None` = no deadline).
    /// Deadlines are measured from submission and checked at two points:
    /// when a worker dequeues the job, and again after compile + keygen
    /// just before execution — an expired request fails with
    /// [`ServeError::DeadlineExceeded`] without executing. The deadline
    /// is **not** a response-latency bound: a phase already under way
    /// (compile, keygen, execution) is never aborted, so a request that
    /// passes the last check still runs to completion even if it finishes
    /// past its deadline.
    pub default_deadline: Option<Duration>,
    /// Byte budget of the compile cache (`None` = unbounded).
    pub cache_budget_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: None,
            cache_budget_bytes: None,
        }
    }
}

/// One unit of client work: a textual program to compile (through the
/// cache) and execute on the session's keys.
#[derive(Debug, Clone)]
pub struct Request {
    /// The session to execute under.
    pub session: SessionId,
    /// The program in the workspace's textual format — this exact text is
    /// the compile-cache key.
    pub program: String,
    /// Compile parameters (part of the cache key).
    pub params: CompileParams,
    /// Compiler id (part of the cache key); see [`compiler_for`].
    pub compiler: String,
    /// Input bindings, one vector per program input.
    pub inputs: HashMap<String, Vec<f64>>,
    /// Per-request deadline overriding the server default (same
    /// semantics as [`ServerConfig::default_deadline`]: checked at
    /// dequeue and before execution, never aborts a running phase).
    pub deadline: Option<Duration>,
}

/// A successfully served request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Decrypted program outputs.
    pub outputs: Vec<Vec<f64>>,
    /// Plaintext reference outputs for the same inputs.
    pub reference: Vec<Vec<f64>>,
    /// Whether compilation was served from the cache.
    pub cache_hit: bool,
    /// The session-local request index (submission order) the encryption
    /// seed was derived from.
    pub seq: u64,
    /// The derived encryption seed (replayable via [`request_seed`]).
    pub enc_seed: u64,
    /// This request's memory counters: deltas against the shared pool,
    /// absolute byte peaks (see [`MemStats::delta_since`]).
    pub mem: MemStats,
    /// Wall time of the homomorphic phase.
    pub op_time: Duration,
    /// Executor wall time (encrypt + ops + decrypt).
    pub exec_time: Duration,
    /// End-to-end latency: queue wait + compile (or cache hit) + execution.
    pub latency: Duration,
}

#[derive(Debug, Default)]
struct TicketInner {
    slot: Mutex<Option<Result<Response, ServeError>>>,
    done: Condvar,
}

/// A handle to a submitted request's eventual result.
#[derive(Debug)]
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl Ticket {
    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// Returns the request's [`ServeError`] if it failed.
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut slot = self.inner.slot.lock().expect("ticket lock");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.inner.done.wait(slot).expect("ticket wait");
        }
    }
}

struct Job {
    request: Request,
    session: Arc<Session>,
    seq: u64,
    submitted: Instant,
    deadline: Option<Duration>,
    ticket: Arc<TicketInner>,
}

struct ServerInner {
    cfg: ServerConfig,
    cache: CompileCache,
    store: SessionStore,
    pools: Mutex<HashMap<usize, Arc<PolyPool>>>,
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    not_full: Condvar,
    shutdown: AtomicBool,
    latency: LatencyHistogram,
    completed: AtomicU64,
    failed: AtomicU64,
    started: Instant,
}

impl ServerInner {
    /// The shared polynomial pool for limb degree `degree`, created on
    /// first use. Every session executing at this degree recycles through
    /// the same pool.
    fn pool(&self, degree: usize) -> Arc<PolyPool> {
        let mut pools = self.pools.lock().expect("pool map lock");
        pools
            .entry(degree)
            .or_insert_with(|| Arc::new(PolyPool::new(degree)))
            .clone()
    }

    fn fulfill(&self, ticket: &TicketInner, result: Result<Response, ServeError>) {
        if result.is_err() {
            self.failed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
        *ticket.slot.lock().expect("ticket lock") = Some(result);
        ticket.done.notify_all();
    }

    /// Runs one job end-to-end and fulfills its ticket. Never panics: the
    /// whole pipeline ([`ServerInner::run`]: parse, compile, keygen,
    /// execute) is wrapped in a single `catch_unwind` — any stage can
    /// panic, not just the executor — and every other failure mode maps
    /// to a [`ServeError`].
    fn process(&self, job: Job) {
        let Job {
            request,
            session,
            seq,
            submitted,
            deadline,
            ticket,
        } = job;

        if let Some(deadline) = deadline {
            let waited = submitted.elapsed();
            if waited > deadline {
                session.record_failure();
                self.fulfill(&ticket, Err(ServeError::DeadlineExceeded { waited }));
                return;
            }
        }
        // A panic earlier in the queue may have quarantined the session
        // after this job was accepted.
        if session.is_quarantined() {
            session.record_failure();
            self.fulfill(&ticket, Err(ServeError::SessionQuarantined(session.id())));
            return;
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.run(request, &session, seq, submitted, deadline)
        }));
        match outcome {
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                session.quarantine();
                session.record_failure();
                self.fulfill(&ticket, Err(ServeError::ExecutorPanic(msg)));
            }
            Ok(Err(err)) => {
                session.record_failure();
                self.fulfill(&ticket, Err(err));
            }
            Ok(Ok(response)) => {
                session.record_success(&response.mem);
                self.latency.record(response.latency);
                self.fulfill(&ticket, Ok(response));
            }
        }
    }

    /// The fallible request pipeline: parse → cached compile → session
    /// keys → execute. Every call runs inside [`ServerInner::process`]'s
    /// `catch_unwind`, so a panic anywhere in here surfaces as
    /// [`ServeError::ExecutorPanic`] instead of unwinding through the
    /// worker.
    fn run(
        &self,
        request: Request,
        session: &Session,
        seq: u64,
        submitted: Instant,
        deadline: Option<Duration>,
    ) -> Result<Response, ServeError> {
        let program =
            text::parse(&request.program).map_err(|e| ServeError::Parse(e.to_string()))?;
        let compiler = compiler_for(&request.compiler)
            .ok_or_else(|| ServeError::UnknownCompiler(request.compiler.clone()))?;
        let cached = self
            .cache
            .get_or_compile(&program, &request.params, compiler.as_ref())?;
        let keys = session.keys_for(&cached.scheduled)?;
        // Second deadline check: a cold compile or keygen can dwarf the
        // queue wait, and execution — the expensive phase — is still
        // ahead, so fail the already-late request cheaply instead of
        // running it.
        if let Some(deadline) = deadline {
            let waited = submitted.elapsed();
            if waited > deadline {
                return Err(ServeError::DeadlineExceeded { waited });
            }
        }

        let pool = self.pool(keys.context().degree());
        let enc_seed = request_seed(session.options().exec.seed, seq);
        let options: ParOptions = session.options().clone();
        let report = execute_parallel_with_keys(
            &cached.scheduled,
            &request.inputs,
            &options,
            &keys,
            Some(pool),
            enc_seed,
        )?;
        let latency = submitted.elapsed();
        Ok(Response {
            outputs: report.outputs,
            reference: report.reference,
            cache_hit: cached.hit,
            seq,
            enc_seed,
            mem: report.mem,
            op_time: report.op_time,
            exec_time: report.total_time,
            latency,
        })
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("queue lock");
                loop {
                    if let Some(job) = queue.pop_front() {
                        self.not_full.notify_one();
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue = self.not_empty.wait(queue).expect("queue wait");
                }
            };
            self.process(job);
        }
    }
}

/// The multi-session FHE service: compile cache + session store + bounded
/// request queue drained by service workers.
///
/// Dropping the server shuts it down: queued-but-unstarted requests are
/// fulfilled with [`ServeError::ShuttingDown`] and workers are joined.
#[derive(Debug)]
pub struct FheServer {
    inner: Arc<ServerInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ServerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerInner")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl FheServer {
    /// Starts a server with `cfg.workers` service threads.
    pub fn new(cfg: ServerConfig) -> FheServer {
        let workers = cfg.workers.max(1);
        let inner = Arc::new(ServerInner {
            cache: CompileCache::new(cfg.cache_budget_bytes),
            cfg,
            store: SessionStore::new(),
            pools: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            shutdown: AtomicBool::new(false),
            latency: LatencyHistogram::new(),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            started: Instant::now(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = inner.clone();
                thread::Builder::new()
                    .name(format!("fhe-serve-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawn service worker")
            })
            .collect();
        FheServer {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Creates a session executing under `options` and returns its id.
    pub fn create_session(&self, options: ParOptions) -> SessionId {
        self.inner.store.create(options)
    }

    /// Submits a request, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// Fails fast — before queuing — with [`ServeError::UnknownSession`],
    /// [`ServeError::SessionQuarantined`], [`ServeError::UnknownCompiler`]
    /// or [`ServeError::ShuttingDown`].
    pub fn submit(&self, request: Request) -> Result<Ticket, ServeError> {
        self.enqueue(request, true)
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// As [`FheServer::submit`], plus [`ServeError::Overloaded`] when the
    /// queue is at capacity.
    pub fn try_submit(&self, request: Request) -> Result<Ticket, ServeError> {
        self.enqueue(request, false)
    }

    /// Submits and waits: `submit(request)?.wait()`.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] of submission or execution.
    pub fn call(&self, request: Request) -> Result<Response, ServeError> {
        self.submit(request)?.wait()
    }

    fn enqueue(&self, request: Request, block: bool) -> Result<Ticket, ServeError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let session = self
            .inner
            .store
            .get(request.session)
            .ok_or(ServeError::UnknownSession(request.session))?;
        if session.is_quarantined() {
            return Err(ServeError::SessionQuarantined(session.id()));
        }
        if compiler_for(&request.compiler).is_none() {
            return Err(ServeError::UnknownCompiler(request.compiler));
        }

        let ticket = Arc::new(TicketInner::default());
        let deadline = request.deadline.or(self.inner.cfg.default_deadline);
        let mut queue = self.inner.queue.lock().expect("queue lock");
        while queue.len() >= self.inner.cfg.queue_capacity {
            if self.inner.shutdown.load(Ordering::Acquire) {
                return Err(ServeError::ShuttingDown);
            }
            if !block {
                return Err(ServeError::Overloaded {
                    queued: queue.len(),
                    capacity: self.inner.cfg.queue_capacity,
                });
            }
            queue = self.inner.not_full.wait(queue).expect("queue wait");
        }
        // Re-check while holding the lock: shutdown() sets the flag under
        // this same lock before draining, so a job pushed past this point
        // is guaranteed to be either drained by shutdown or dequeued by a
        // worker — never stranded on a queue nobody will drain.
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        // The sequence number is claimed under the queue lock so that
        // per-session submission order and queue order agree.
        let seq = session.next_seq();
        queue.push_back(Job {
            request,
            session,
            seq,
            submitted: Instant::now(),
            deadline,
            ticket: ticket.clone(),
        });
        drop(queue);
        self.inner.not_empty.notify_one();
        Ok(Ticket { inner: ticket })
    }

    /// A point-in-time snapshot of service counters.
    pub fn stats(&self) -> ServeStats {
        let completed = self.inner.completed.load(Ordering::Relaxed);
        let failed = self.inner.failed.load(Ordering::Relaxed);
        let uptime = self.inner.started.elapsed().as_secs_f64().max(1e-9);
        let mut pools: Vec<PoolSnapshot> = self
            .inner
            .pools
            .lock()
            .expect("pool map lock")
            .iter()
            .map(|(&degree, pool)| PoolSnapshot {
                degree,
                stats: pool.stats(),
            })
            .collect();
        pools.sort_by_key(|p| p.degree);
        ServeStats {
            requests: completed + failed,
            failed,
            requests_per_sec: completed as f64 / uptime,
            p50_latency: self.inner.latency.quantile(0.5),
            p99_latency: self.inner.latency.quantile(0.99),
            mean_latency: self.inner.latency.mean(),
            cache: self.inner.cache.stats(),
            pools,
            sessions: self.inner.store.stats(),
        }
    }

    /// The compile cache (exposed for the bench's cold phase and tests).
    pub fn cache(&self) -> &CompileCache {
        &self.inner.cache
    }

    /// The shared polynomial pool for limb degree `degree` (created on
    /// first use).
    pub fn shared_pool(&self, degree: usize) -> Arc<PolyPool> {
        self.inner.pool(degree)
    }

    /// Stops accepting work, fails queued-but-unstarted requests with
    /// [`ServeError::ShuttingDown`] and joins the workers. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        let drained: Vec<Job> = {
            // The flag is set *under the queue lock* so flag-set and drain
            // are atomic with respect to enqueuers: every job pushed
            // before this point is drained here, and enqueue()'s re-check
            // under the same lock rejects everything after — no job can
            // land on the queue once the workers are told to exit.
            let mut queue = self.inner.queue.lock().expect("queue lock");
            self.inner.shutdown.store(true, Ordering::Release);
            queue.drain(..).collect()
        };
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
        for job in drained {
            job.session.record_failure();
            self.inner
                .fulfill(&job.ticket, Err(ServeError::ShuttingDown));
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("worker handles"));
        for handle in handles {
            handle.join().expect("service worker exits cleanly");
        }
    }
}

impl Drop for FheServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Miniature re-derivations of the server's enqueue/shutdown and
/// quarantine-admission protocols for the `fhe-conc` model checker
/// (checker builds only).
///
/// `submit_shutdown_model(false)` reproduces the PR 9 race the
/// under-the-lock re-check closes: a submitter that only checks the
/// shutdown flag *before* taking the queue lock can push its job after
/// shutdown has drained the queue and told the workers to exit, stranding
/// a ticket nobody will ever fulfill — the submitter's `wait` then sleeps
/// forever. `submit_shutdown_model(true)` is the shipped protocol (flag
/// set under the queue lock by shutdown, re-checked under the same lock
/// before `push_back`) and must pass exhaustively.
#[cfg(fhe_conc)]
#[doc(hidden)]
pub mod conc_model {
    use std::collections::VecDeque;

    use fhe_conc::sync::atomic::{AtomicBool, Ordering};
    use fhe_conc::sync::{thread, Arc, Condvar, Mutex};

    /// A one-shot result slot standing in for [`super::Ticket`]: `true`
    /// means executed, `false` means failed with shutting-down.
    type MiniTicket = Arc<(Mutex<Option<bool>>, Condvar)>;

    struct MiniServer {
        queue: Mutex<VecDeque<MiniTicket>>,
        not_empty: Condvar,
        shutdown: AtomicBool,
    }

    fn fulfill(ticket: &MiniTicket, ok: bool) {
        *ticket.0.lock().expect("ticket lock") = Some(ok);
        ticket.1.notify_all();
    }

    fn mini_worker(s: &MiniServer) {
        loop {
            let ticket = {
                let mut queue = s.queue.lock().expect("queue lock");
                loop {
                    if let Some(t) = queue.pop_front() {
                        break t;
                    }
                    if s.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = s.not_empty.wait(queue).expect("queue wait");
                }
            };
            fulfill(&ticket, true);
        }
    }

    fn mini_submit(s: &MiniServer, recheck_under_lock: bool) -> Option<MiniTicket> {
        if s.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        let ticket: MiniTicket = Arc::new((Mutex::new(None), Condvar::new()));
        let mut queue = s.queue.lock().expect("queue lock");
        if recheck_under_lock && s.shutdown.load(Ordering::SeqCst) {
            // Shipped protocol: shutdown sets the flag under this lock
            // before draining, so seeing it here means the drain already
            // ran (or atomically will, before any worker could exit).
            return None;
        }
        // BUG when `recheck_under_lock` is false (pre-fix PR 9 variant):
        // the drain may have happened between the fast-path check above
        // and this push — the job lands on a queue no worker will drain.
        queue.push_back(Arc::clone(&ticket));
        drop(queue);
        s.not_empty.notify_one();
        Some(ticket)
    }

    fn mini_shutdown(s: &MiniServer) {
        let drained: Vec<MiniTicket> = {
            let mut queue = s.queue.lock().expect("queue lock");
            s.shutdown.store(true, Ordering::SeqCst);
            queue.drain(..).collect()
        };
        s.not_empty.notify_all();
        for ticket in drained {
            fulfill(&ticket, false);
        }
    }

    /// One worker, one racing submitter, shutdown from the model's main
    /// thread. Every accepted ticket must resolve; under the checker the
    /// `recheck_under_lock = false` variant deadlocks (the stranded
    /// submitter waits forever) in some interleaving.
    pub fn submit_shutdown_model(recheck_under_lock: bool) {
        let s = Arc::new(MiniServer {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let worker = {
            let s = Arc::clone(&s);
            thread::spawn(move || mini_worker(&s))
        };
        let submitter = {
            let s = Arc::clone(&s);
            thread::spawn(move || {
                if let Some(ticket) = mini_submit(&s, recheck_under_lock) {
                    let mut slot = ticket.0.lock().expect("ticket lock");
                    while slot.is_none() {
                        slot = ticket.1.wait(slot).expect("ticket wait");
                    }
                }
            })
        };
        mini_shutdown(&s);
        worker.join().expect("worker exits");
        submitter.join().expect("submitter resolves");
    }

    /// How the mini quarantine worker disposed of one job.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Disposal {
        /// The job ran normally.
        Executed,
        /// The job panicked and quarantined its session.
        Panicked,
        /// The job was rejected by the dequeue-time quarantine re-check.
        Rejected,
    }

    /// Quarantine admission: a poison job quarantines the session when
    /// processed; a concurrently submitted normal job may legally execute
    /// only if the worker dequeued it *before* the poison one. The
    /// dequeue-time re-check (mirroring [`super::ServerInner::process`])
    /// makes any post-quarantine execution impossible; the final assert
    /// re-derives exactly that event ordering from the disposal log.
    pub fn quarantine_admission_model() {
        const POISON: u32 = 0;
        const NORMAL: u32 = 1;
        struct State {
            queue: Mutex<VecDeque<u32>>,
            not_empty: Condvar,
            quarantined: AtomicBool,
            log: Mutex<Vec<(u32, Disposal)>>,
        }
        let s = Arc::new(State {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            quarantined: AtomicBool::new(false),
            log: Mutex::new(Vec::new()),
        });
        let submit = |s: &State, job: u32| {
            s.queue.lock().expect("queue lock").push_back(job);
            s.not_empty.notify_one();
        };
        let submitters: Vec<_> = [POISON, NORMAL]
            .into_iter()
            .map(|job| {
                let s = Arc::clone(&s);
                thread::spawn(move || submit(&s, job))
            })
            .collect();
        let worker = {
            let s = Arc::clone(&s);
            thread::spawn(move || {
                // Both submissions always land, so processing exactly two
                // jobs terminates in every interleaving.
                for _ in 0..2 {
                    let job = {
                        let mut queue = s.queue.lock().expect("queue lock");
                        loop {
                            if let Some(job) = queue.pop_front() {
                                break job;
                            }
                            queue = s.not_empty.wait(queue).expect("queue wait");
                        }
                    };
                    // Dequeue-time re-check: a panic earlier in the queue
                    // may have quarantined the session after this job was
                    // accepted.
                    let disposal = if s.quarantined.load(Ordering::SeqCst) {
                        Disposal::Rejected
                    } else if job == POISON {
                        s.quarantined.store(true, Ordering::SeqCst);
                        Disposal::Panicked
                    } else {
                        Disposal::Executed
                    };
                    s.log.lock().expect("log lock").push((job, disposal));
                }
            })
        };
        for handle in submitters {
            handle.join().expect("submitter exits");
        }
        worker.join().expect("worker exits");
        let log = s.log.lock().expect("log lock");
        assert_eq!(log.len(), 2, "both jobs disposed exactly once");
        let poison_at = log
            .iter()
            .position(|&(job, _)| job == POISON)
            .expect("poison job processed");
        assert_eq!(log[poison_at].1, Disposal::Panicked);
        for (i, &(job, disposal)) in log.iter().enumerate() {
            if job == NORMAL {
                let expect = if i < poison_at {
                    Disposal::Executed
                } else {
                    Disposal::Rejected
                };
                assert_eq!(
                    disposal,
                    expect,
                    "a job dequeued {} the quarantine event",
                    if i < poison_at { "before" } else { "after" },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::Builder;
    use fhe_runtime::ExecOptions;

    fn fig2a_text(slots: usize) -> String {
        let b = Builder::new("fig2a", slots);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        text::print(&b.finish(vec![q]))
    }

    fn small_session_options(seed: u64) -> ParOptions {
        ParOptions {
            exec: ExecOptions {
                poly_degree: 256,
                seed,
                threads: 1,
                ..ExecOptions::default()
            },
            workers: 1,
            fusion: true,
        }
    }

    fn request(session: SessionId, slots: usize) -> Request {
        Request {
            session,
            program: fig2a_text(slots),
            params: CompileParams::new(30),
            compiler: "reserve".into(),
            inputs: [
                ("x".to_string(), vec![0.5; slots]),
                ("y".to_string(), vec![0.25; slots]),
            ]
            .into_iter()
            .collect(),
            deadline: None,
        }
    }

    #[test]
    fn serves_a_request_and_caches_the_compile() {
        let server = FheServer::new(ServerConfig::default());
        let session = server.create_session(small_session_options(11));
        let a = server.call(request(session, 128)).unwrap();
        assert!(!a.cache_hit);
        let b = server.call(request(session, 128)).unwrap();
        assert!(b.cache_hit);
        // Different seq → different encryption randomness, same values.
        assert_ne!(a.enc_seed, b.enc_seed);
        assert!(fhe_runtime::outputs_close(&a.outputs, &a.reference, 1e-2).is_ok());
        assert!(fhe_runtime::outputs_close(&b.outputs, &b.reference, 1e-2).is_ok());
        let stats = server.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.failed, 0);
        assert_eq!((stats.cache.hits, stats.cache.misses), (1, 1));
        assert!(stats.p50_latency > Duration::ZERO);
        assert!(stats.requests_per_sec > 0.0);
    }

    #[test]
    fn submit_time_errors_are_structured() {
        let server = FheServer::new(ServerConfig::default());
        let session = server.create_session(small_session_options(1));
        assert!(matches!(
            server.call(request(99, 128)),
            Err(ServeError::UnknownSession(99))
        ));
        let mut bad = request(session, 128);
        bad.compiler = "nope".into();
        assert!(matches!(
            server.call(bad),
            Err(ServeError::UnknownCompiler(_))
        ));
        let mut garbled = request(session, 128);
        garbled.program = "not a program".into();
        assert!(matches!(server.call(garbled), Err(ServeError::Parse(_))));
    }

    #[test]
    fn zero_deadline_expires_in_queue() {
        let server = FheServer::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let session = server.create_session(small_session_options(2));
        let mut r = request(session, 128);
        r.deadline = Some(Duration::ZERO);
        // The worker may or may not pick it up before the deadline check;
        // with a zero deadline the check always fails.
        match server.call(r) {
            Err(ServeError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!((stats.requests, stats.failed), (1, 1));
    }

    #[test]
    fn concurrent_submit_and_shutdown_strands_no_ticket() {
        // The flag is set under the queue lock and re-checked under the
        // same lock before push_back, so every accepted ticket resolves
        // (executed or ShuttingDown) no matter how submit and shutdown
        // interleave. Before that fix, a submit racing the drain could
        // push onto a queue no worker would ever drain and its wait()
        // would hang this test forever.
        for round in 0..4u64 {
            let server = Arc::new(FheServer::new(ServerConfig {
                workers: 1,
                queue_capacity: 4,
                ..ServerConfig::default()
            }));
            let session = server.create_session(small_session_options(round));
            let submitters: Vec<_> = (0..3)
                .map(|_| {
                    let server = server.clone();
                    thread::spawn(move || {
                        let mut tickets = Vec::new();
                        for _ in 0..3 {
                            match server.submit(request(session, 128)) {
                                Ok(t) => tickets.push(t),
                                Err(ServeError::ShuttingDown) => break,
                                Err(other) => panic!("unexpected submit error: {other:?}"),
                            }
                        }
                        tickets
                    })
                })
                .collect();
            server.shutdown();
            for handle in submitters {
                for ticket in handle.join().unwrap() {
                    match ticket.wait() {
                        Ok(_) | Err(ServeError::ShuttingDown) => {}
                        Err(other) => panic!("unexpected result: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn shutdown_fails_queued_requests_and_rejects_new_ones() {
        let server = FheServer::new(ServerConfig::default());
        let session = server.create_session(small_session_options(3));
        server.shutdown();
        assert!(matches!(
            server.call(request(session, 128)),
            Err(ServeError::ShuttingDown)
        ));
        // Idempotent (and runs again on drop without hanging).
        server.shutdown();
    }
}
