//! Golden-file regression tests: the compiled schedules for the worked
//! example must match the checked-in snapshots exactly. If a compiler
//! change alters a plan, regenerate with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_schedules
//! ```
//!
//! and review the diff like any other code change.

use fhe_reserve::baselines;
use fhe_reserve::ir::text;
use fhe_reserve::prelude::*;

fn fig2a() -> fhe_ir::Program {
    let b = Builder::new("fig2a", 8);
    let x = b.input("x");
    let y = b.input("y");
    let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
    b.finish(vec![q])
}

fn check(name: &str, rendered: String) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {name}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        rendered, expected,
        "schedule for {name} drifted from its golden snapshot; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

fn render(s: &fhe_ir::ScheduledProgram) -> String {
    let mut out = text::print(&s.program);
    for (i, spec) in s.inputs.iter().enumerate() {
        out.push_str(&format!(
            "// input {i}: scale 2^{}, level {}\n",
            spec.scale_bits, spec.level
        ));
    }
    out
}

#[test]
fn reserve_schedule_is_stable() {
    let compiled = compile(&fig2a(), &Options::new(20)).unwrap();
    check("fig2a_reserve_w20.fhe", render(&compiled.scheduled));
}

#[test]
fn reserve_ra_schedule_is_stable() {
    let compiled = compile(&fig2a(), &Options::with_mode(20, Mode::Ra)).unwrap();
    check("fig2a_ra_w20.fhe", render(&compiled.scheduled));
}

#[test]
fn eva_schedule_is_stable() {
    let out = baselines::eva::compile(&fig2a(), &CompileParams::new(20)).unwrap();
    check("fig2a_eva_w20.fhe", render(&out.scheduled));
}

#[test]
fn sobel_reserve_schedule_is_stable() {
    let program = fhe_reserve::workloads::image::sobel(8);
    let compiled = compile(&program, &Options::new(30)).unwrap();
    check("sobel8_reserve_w30.fhe", render(&compiled.scheduled));
}
