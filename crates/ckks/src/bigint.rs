//! Minimal unsigned big-integer arithmetic for exact CRT reconstruction.
//!
//! Decoding a ciphertext needs the centered value of each coefficient modulo
//! `Q = Πqᵢ` (up to ~2^1800 for deep chains); floating-point CRT would bury
//! the 2^-20-scale errors that Fig. 7 measures. Only the handful of
//! operations decode needs are implemented.

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer (little-endian 64-bit limbs,
/// no trailing zero limbs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// From a single word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &BigUint) {
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        let mut carry = 0u64;
        for i in 0..n {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub_assign(&mut self, other: &BigUint) {
        assert!(self.cmp_big(other) != Ordering::Less, "BigUint underflow");
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, c1) = self.limbs[i].overflowing_sub(b);
            let (d2, c2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = u64::from(c1) + u64::from(c2);
        }
        debug_assert_eq!(borrow, 0);
        self.trim();
    }

    /// Returns `self · m` for a word multiplier.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let prod = l as u128 * m as u128 + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        BigUint { limbs: out }
    }

    /// Total-order comparison.
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// `self · 2` (used to compare against `Q/2` without division).
    pub fn double(&self) -> BigUint {
        self.mul_u64(2)
    }

    /// Lossy conversion to `f64` (exact for values < 2^53, correctly scaled
    /// above).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 2f64.powi(64) + l as f64;
        }
        acc
    }
}

/// Exact centered CRT reconstruction as an `f64`.
///
/// Given residues `x mod qᵢ` (each `< qᵢ`), reconstructs the unique
/// `x ∈ (−Q/2, Q/2]` with those residues and returns it as `f64`.
#[derive(Debug, Clone)]
pub struct CrtReconstructor {
    moduli: Vec<u64>,
    /// `Q̂ᵢ = Q / qᵢ` as big integers.
    q_hats: Vec<BigUint>,
    /// `(Q̂ᵢ)^{-1} mod qᵢ`.
    q_hat_invs: Vec<u64>,
    /// `Q = Π qᵢ`.
    q: BigUint,
}

impl CrtReconstructor {
    /// Precomputes the CRT constants for a basis of pairwise-coprime primes.
    pub fn new(moduli: &[u64]) -> Self {
        use crate::modular::Modulus;
        assert!(!moduli.is_empty(), "CRT basis must be non-empty");
        let mut q = BigUint::from_u64(1);
        for &m in moduli {
            q = q.mul_u64(m);
        }
        let mut q_hats = Vec::with_capacity(moduli.len());
        let mut q_hat_invs = Vec::with_capacity(moduli.len());
        for (i, &m) in moduli.iter().enumerate() {
            let mut hat = BigUint::from_u64(1);
            for (j, &mj) in moduli.iter().enumerate() {
                if i != j {
                    hat = hat.mul_u64(mj);
                }
            }
            // Q̂ᵢ mod qᵢ by folding limb by limb.
            let md = Modulus::new(m);
            let mut hat_mod = 0u64;
            for &l in hat.limbs.iter().rev() {
                // hat_mod = hat_mod · 2^64 + l (mod m)
                let hi = md.reduce_u128((hat_mod as u128) << 64);
                hat_mod = md.reduce_u128(hi as u128 + md.reduce(l) as u128);
            }
            q_hat_invs.push(md.inv(hat_mod));
            q_hats.push(hat);
        }
        CrtReconstructor {
            moduli: moduli.to_vec(),
            q_hats,
            q_hat_invs,
            q,
        }
    }

    /// Reconstructs the centered value of the residue vector.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the basis size.
    pub fn centered_f64(&self, residues: &[u64]) -> f64 {
        use crate::modular::Modulus;
        assert_eq!(residues.len(), self.moduli.len());
        let mut acc = BigUint::zero();
        for ((&r, &m), (hat, &hat_inv)) in residues
            .iter()
            .zip(&self.moduli)
            .zip(self.q_hats.iter().zip(&self.q_hat_invs))
        {
            let md = Modulus::new(m);
            let t = md.mul(md.reduce(r), hat_inv);
            acc.add_assign(&hat.mul_u64(t));
        }
        // acc < Σ qᵢ·Q̂ᵢ = k·Q with k = basis size; reduce by subtraction.
        while acc.cmp_big(&self.q) != Ordering::Less {
            acc.sub_assign(&self.q);
        }
        // Center into (−Q/2, Q/2].
        if acc.double().cmp_big(&self.q) == Ordering::Greater {
            let mut neg = self.q.clone();
            neg.sub_assign(&acc);
            -neg.to_f64()
        } else {
            acc.to_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::from_u64(u64::MAX);
        let mut s = a.clone();
        s.add_assign(&a);
        assert_eq!(s, a.mul_u64(2));
        s.sub_assign(&a);
        assert_eq!(s, a);
        s.sub_assign(&a);
        assert!(s.is_zero());
    }

    #[test]
    fn mul_carries_across_limbs() {
        let a = BigUint::from_u64(1 << 63);
        let b = a.mul_u64(4);
        assert_eq!(b.limbs, vec![0, 2]);
        assert_eq!(b.to_f64(), 2f64.powi(65));
    }

    #[test]
    fn cmp_orders_by_magnitude() {
        let a = BigUint::from_u64(5).mul_u64(u64::MAX);
        let b = BigUint::from_u64(7);
        assert_eq!(a.cmp_big(&b), Ordering::Greater);
        assert_eq!(b.cmp_big(&a), Ordering::Less);
        assert_eq!(b.cmp_big(&BigUint::from_u64(7)), Ordering::Equal);
    }

    #[test]
    fn crt_reconstructs_small_values() {
        let basis = [97u64, 101, 103];
        let crt = CrtReconstructor::new(&basis);
        for &x in &[0i64, 1, -1, 42, -4242, 300000, -499999] {
            let residues: Vec<u64> = basis
                .iter()
                .map(|&m| x.rem_euclid(m as i64) as u64)
                .collect();
            let got = crt.centered_f64(&residues);
            assert_eq!(got, x as f64, "x = {x}");
        }
    }

    #[test]
    fn crt_handles_values_near_half_q() {
        let basis = [11u64, 13];
        let q = 11 * 13; // 143
        let crt = CrtReconstructor::new(&basis);
        // 71 = floor(143/2) stays positive; 72 wraps to −71.
        let r = |x: i64| -> Vec<u64> {
            basis
                .iter()
                .map(|&m| x.rem_euclid(m as i64) as u64)
                .collect()
        };
        assert_eq!(crt.centered_f64(&r(71)), 71.0);
        assert_eq!(crt.centered_f64(&r(72)), 72.0 - q as f64);
    }

    #[test]
    fn crt_large_basis_accuracy() {
        let basis = crate::primes::ntt_primes(55, 1 << 4, 6);
        let crt = CrtReconstructor::new(&basis);
        let x: i64 = -123456789012345;
        let residues: Vec<u64> = basis
            .iter()
            .map(|&m| x.rem_euclid(m as i64) as u64)
            .collect();
        assert_eq!(crt.centered_f64(&residues), x as f64);
    }
}
