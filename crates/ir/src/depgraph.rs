//! Static dependence DAG and parallel-performance analysis of scheduled
//! programs.
//!
//! The cost model (Table 3) prices each op in isolation; this module prices
//! the *structure*: which ops could run concurrently, and what latency a
//! DAG-parallel runtime could reach. [`DepGraph::build`] constructs the
//! dependence DAG of a [`ScheduledProgram`] — true (read-after-write)
//! dependences plus the anti and output dependences induced by the
//! runtime's last-use ciphertext freeing and hoisted rotation groups (the
//! same discipline as [`crate::memory::estimate_memory`]). From the DAG and
//! a [`CostModel`] it derives:
//!
//! - **work** — total µs of all live ops (equals the sequential
//!   `estimated_latency_us`),
//! - **span** — the critical path, the latency floor at unbounded width,
//! - **`max_width`** — the peak number of concurrently running costed ops
//!   under an unbounded-width earliest-start schedule, and
//! - **`T(k)`** — a per-width latency profile from greedy critical-path
//!   list scheduling with `k` workers (`T(1)` = work, `T(∞)` → span).
//!
//! The result is packaged as a [`ParallelismEstimate`] carried by every
//! `CompileReport`, and the DAG itself is what the parallel-safety checker
//! in `fhe-analysis` proves race-freedom over: every reader of a ciphertext
//! is an ancestor of the op that frees it, so *any* topological-order-
//! respecting parallel execution observes the free after the last read.

use std::collections::HashMap;

use crate::cost::{CostModel, OpClass};
use crate::op::{Op, ValueId};
use crate::schedule::{ScaleMap, ScheduledProgram};

/// The kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write: the consumer reads the producer's result.
    True,
    /// Write-after-read: the op performing a value's last use returns its
    /// buffer to the pool, and must therefore run after every other reader.
    Anti,
    /// Write-after-write: members of a hoisted rotation group share the
    /// decomposition the group leader writes, so they are ordered after it.
    Output,
}

impl DepKind {
    /// Short label used in DOT exports and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            DepKind::True => "true",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        }
    }
}

/// One node of the dependence DAG: a live op of the schedule with its
/// statically priced latency.
#[derive(Debug, Clone)]
pub struct DepNode {
    /// The op this node represents.
    pub id: ValueId,
    /// Its Table 3 class (`None` for zero-cost ops: inputs, constants,
    /// plaintext arithmetic).
    pub class: Option<OpClass>,
    /// Its latency under the model the graph was built with (µs).
    pub cost_us: f64,
}

/// Static parallelism profile of a compiled program, reported next to the
/// memory estimate in every `CompileReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelismEstimate {
    /// Total latency of all live ops (µs) — the one-worker execution time.
    pub work_us: f64,
    /// Critical-path latency (µs) — the unbounded-width floor.
    pub span_us: f64,
    /// Peak number of concurrently running costed ops under an
    /// unbounded-width earliest-start schedule.
    pub max_width: usize,
    /// Greedy list-schedule latency at power-of-two worker counts:
    /// `(k, T(k) µs)` pairs with `k = 1, 2, 4, …` up to the first power of
    /// two at or above `max_width`.
    pub t_of_k: Vec<(usize, f64)>,
}

impl Default for ParallelismEstimate {
    fn default() -> Self {
        ParallelismEstimate {
            work_us: 0.0,
            span_us: 0.0,
            max_width: 0,
            t_of_k: vec![(1, 0.0)],
        }
    }
}

impl ParallelismEstimate {
    /// Ideal parallelism `work / span` (1.0 for empty or serial programs).
    pub fn parallelism(&self) -> f64 {
        if self.span_us > 0.0 {
            self.work_us / self.span_us
        } else {
            1.0
        }
    }

    /// Speedup of the `k`-worker schedule over one worker, from the
    /// profile's largest tabulated width at or below `k`.
    pub fn speedup_at(&self, k: usize) -> f64 {
        let t1 = match self.t_of_k.first() {
            Some(&(_, t)) if t > 0.0 => t,
            _ => return 1.0,
        };
        let tk = self
            .t_of_k
            .iter()
            .filter(|&&(w, _)| w <= k)
            .map(|&(_, t)| t)
            .fold(t1, f64::min);
        if tk > 0.0 {
            t1 / tk
        } else {
            1.0
        }
    }
}

/// The dependence DAG of a scheduled program. Node order (ascending
/// [`ValueId`]) is a topological order: true edges run producer→consumer,
/// anti edges run reader→last-reader, and output edges run group
/// leader→later member, all of which point from lower to higher ids.
#[derive(Debug, Clone)]
pub struct DepGraph {
    nodes: Vec<DepNode>,
    node_of: Vec<Option<usize>>,
    preds: Vec<Vec<(usize, DepKind)>>,
    succs: Vec<Vec<(usize, DepKind)>>,
    free_at: Vec<Option<ValueId>>,
}

impl DepGraph {
    /// Builds the dependence DAG of `scheduled` under `model`.
    ///
    /// `hoist_rotations` must match the memory model / runtime setting: a
    /// hoisted rotation group executes at its first member, which orders
    /// the group (output dependences) and keeps its source live until the
    /// group's last scheduled member.
    pub fn build(
        scheduled: &ScheduledProgram,
        map: &ScaleMap,
        model: &CostModel,
        hoist_rotations: bool,
    ) -> Self {
        Self::build_inner(scheduled, map, model, hoist_rotations, true)
    }

    /// Builds the DAG from true dependences only — the ordering a
    /// freeing-unaware runtime would enforce. Free points are still
    /// computed, so the parallel-safety checker can demonstrate the races
    /// this graph leaves open; [`DepGraph::build`] adds the anti/output
    /// edges that repair them.
    pub fn build_true_deps(
        scheduled: &ScheduledProgram,
        map: &ScaleMap,
        model: &CostModel,
    ) -> Self {
        Self::build_inner(scheduled, map, model, false, false)
    }

    fn build_inner(
        scheduled: &ScheduledProgram,
        map: &ScaleMap,
        model: &CostModel,
        hoist_rotations: bool,
        hazard_edges: bool,
    ) -> Self {
        let program = &scheduled.program;
        let live = crate::analysis::live(program);
        let n_vals = program.num_ops();

        let mut nodes = Vec::new();
        let mut node_of: Vec<Option<usize>> = vec![None; n_vals];
        for id in program.ids() {
            if !live[id.index()] {
                continue;
            }
            let class = CostModel::classify(program, id);
            let cost_us = model.op_cost(program, id, map);
            node_of[id.index()] = Some(nodes.len());
            nodes.push(DepNode { id, class, cost_us });
        }

        let n = nodes.len();
        let mut preds: Vec<Vec<(usize, DepKind)>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<(usize, DepKind)>> = vec![Vec::new(); n];
        let add_edge = |preds: &mut Vec<Vec<(usize, DepKind)>>,
                        succs: &mut Vec<Vec<(usize, DepKind)>>,
                        from: usize,
                        to: usize,
                        kind: DepKind| {
            if from == to || succs[from].iter().any(|&(t, k)| t == to && k == kind) {
                return;
            }
            succs[from].push((to, kind));
            preds[to].push((from, kind));
        };

        // True dependences: operand → user, between live nodes.
        for &DepNode { id, .. } in &nodes {
            let to = node_of[id.index()].expect("node exists");
            for a in program.op(id).operands() {
                if let Some(from) = node_of[a.index()] {
                    add_edge(&mut preds, &mut succs, from, to, DepKind::True);
                }
            }
        }

        // Last live user of every value (the op whose completion frees the
        // value's buffer); outputs are pinned and never freed.
        let mut last_use: Vec<Option<ValueId>> = vec![None; n_vals];
        let mut users: Vec<Vec<ValueId>> = vec![Vec::new(); n_vals];
        for &DepNode { id, .. } in &nodes {
            for a in program.op(id).operands() {
                if node_of[a.index()].is_some() {
                    last_use[a.index()] = Some(id);
                    if users[a.index()].last() != Some(&id) {
                        users[a.index()].push(id);
                    }
                }
            }
        }
        let mut free_at = last_use.clone();
        for &o in program.outputs() {
            free_at[o.index()] = None; // pinned
        }

        // Anti dependences: every other reader of a ciphertext must finish
        // before the op that frees it (write-after-read on the pool slot).
        for id in program.ids() {
            if !hazard_edges || !program.is_cipher(id) {
                continue;
            }
            if let Some(f) = free_at[id.index()] {
                let fi = node_of[f.index()].expect("freeing op is live");
                for &u in &users[id.index()] {
                    if u != f {
                        let ui = node_of[u.index()].expect("user is live");
                        add_edge(&mut preds, &mut succs, ui, fi, DepKind::Anti);
                    }
                }
            }
        }

        // Output dependences: a hoisted rotation group (≥2 live cipher
        // rotations of one source) materializes every member's output when
        // the leader executes; later members are ordered after it.
        if hoist_rotations {
            let mut groups: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
            for &DepNode { id, .. } in &nodes {
                if let Op::Rotate(a, _) = program.op(id) {
                    if program.is_cipher(id) {
                        groups.entry(*a).or_default().push(id);
                    }
                }
            }
            for group in groups.values() {
                if group.len() < 2 {
                    continue;
                }
                let leader = node_of[group[0].index()].expect("leader is live");
                for &m in &group[1..] {
                    let mi = node_of[m.index()].expect("member is live");
                    add_edge(&mut preds, &mut succs, leader, mi, DepKind::Output);
                }
            }
        }

        DepGraph {
            nodes,
            node_of,
            preds,
            succs,
            free_at,
        }
    }

    /// The DAG's nodes, in topological (schedule) order.
    pub fn nodes(&self) -> &[DepNode] {
        &self.nodes
    }

    /// The node index of a live op, if it is in the graph.
    pub fn node(&self, id: ValueId) -> Option<usize> {
        self.node_of.get(id.index()).copied().flatten()
    }

    /// Predecessors (dependences) of a node.
    pub fn preds(&self, node: usize) -> &[(usize, DepKind)] {
        &self.preds[node]
    }

    /// Successors (dependents) of a node.
    pub fn succs(&self, node: usize) -> &[(usize, DepKind)] {
        &self.succs[node]
    }

    /// The op whose completion frees `id`'s ciphertext buffer, or `None`
    /// when `id` is a program output (pinned), plain, or dead.
    pub fn free_at(&self, id: ValueId) -> Option<ValueId> {
        self.free_at.get(id.index()).copied().flatten()
    }

    /// Total work: the summed cost of all nodes (µs).
    pub fn work_us(&self) -> f64 {
        self.nodes.iter().map(|n| n.cost_us).sum()
    }

    /// Earliest finish time of every node under unbounded width (the
    /// longest-path DP; the maximum entry is the span).
    fn earliest_finish(&self) -> Vec<f64> {
        let mut finish = vec![0.0f64; self.nodes.len()];
        for i in 0..self.nodes.len() {
            let start = self.preds[i]
                .iter()
                .map(|&(p, _)| finish[p])
                .fold(0.0, f64::max);
            finish[i] = start + self.nodes[i].cost_us;
        }
        finish
    }

    /// Span: the cost of the critical path (µs). Zero for empty programs.
    pub fn span_us(&self) -> f64 {
        self.earliest_finish().iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// The ops of one critical path, in execution order.
    pub fn critical_path(&self) -> Vec<ValueId> {
        let finish = self.earliest_finish();
        let Some((mut cur, _)) = finish
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .filter(|&(_, &f)| f > 0.0)
        else {
            return Vec::new();
        };
        let mut path = vec![self.nodes[cur].id];
        loop {
            let target = finish[cur] - self.nodes[cur].cost_us;
            let Some(&(p, _)) = self.preds[cur]
                .iter()
                .filter(|&&(p, _)| finish[p] > 0.0)
                .max_by(|a, b| finish[a.0].total_cmp(&finish[b.0]))
                .filter(|&&(p, _)| finish[p] >= target - 1e-9)
            else {
                break;
            };
            cur = p;
            path.push(self.nodes[cur].id);
        }
        path.reverse();
        path
    }

    /// Peak number of concurrently running costed ops under the
    /// unbounded-width earliest-start schedule.
    pub fn max_width(&self) -> usize {
        let finish = self.earliest_finish();
        // Sweep (time, delta) events; at equal times process departures
        // before arrivals so back-to-back ops do not count as overlapping.
        let mut events: Vec<(f64, i32)> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.cost_us > 0.0 {
                events.push((finish[i] - node.cost_us, 1));
                events.push((finish[i], -1));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as usize
    }

    /// Latency of a greedy critical-path list schedule with `k` workers
    /// (µs). `T(1)` equals [`DepGraph::work_us`]; `T(k)` is nonincreasing
    /// in `k` and bounded below by [`DepGraph::span_us`].
    pub fn t_of_k(&self, k: usize) -> f64 {
        let k = k.max(1);
        let n = self.nodes.len();
        if n == 0 {
            return 0.0;
        }
        // Priority: bottom level (longest path to an exit, own cost
        // included) — the classic critical-path heuristic.
        let mut bottom = vec![0.0f64; n];
        for i in (0..n).rev() {
            let below = self.succs[i]
                .iter()
                .map(|&(s, _)| bottom[s])
                .fold(0.0, f64::max);
            bottom[i] = below + self.nodes[i].cost_us;
        }
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut ready_time = vec![0.0f64; n];
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut workers = vec![0.0f64; k];
        let mut makespan = 0.0f64;
        for _ in 0..n {
            let (w, &wt) = workers
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("k >= 1");
            // Among ready nodes, prefer those startable at the worker's
            // free time; then highest bottom level; then schedule order.
            let pick = ready
                .iter()
                .enumerate()
                .min_by(|&(_, &a), &(_, &b)| {
                    let (ra, rb) = (ready_time[a].max(wt), ready_time[b].max(wt));
                    ra.total_cmp(&rb)
                        .then(bottom[b].total_cmp(&bottom[a]))
                        .then(a.cmp(&b))
                })
                .map(|(slot, _)| slot)
                .expect("ready nonempty while nodes remain");
            let node = ready.swap_remove(pick);
            let start = ready_time[node].max(wt);
            let fin = start + self.nodes[node].cost_us;
            workers[w] = fin;
            makespan = makespan.max(fin);
            for &(s, _) in &self.succs[node] {
                ready_time[s] = ready_time[s].max(fin);
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        makespan
    }

    /// Packages work, span, width and the `T(k)` profile into the report
    /// artifact.
    pub fn estimate(&self) -> ParallelismEstimate {
        let work_us = self.work_us();
        let span_us = self.span_us();
        let max_width = self.max_width();
        let mut t_of_k = vec![(1, self.t_of_k(1))];
        let mut k = 2;
        while k / 2 < max_width {
            t_of_k.push((k, self.t_of_k(k)));
            k *= 2;
        }
        ParallelismEstimate {
            work_us,
            span_us,
            max_width,
            t_of_k,
        }
    }

    /// Graphviz DOT rendering: true dependences solid, anti dependences
    /// dashed, output dependences dotted; critical-path nodes doubled.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let critical: Vec<bool> = {
            let path = self.critical_path();
            let mut on = vec![false; self.node_of.len()];
            for id in path {
                on[id.index()] = true;
            }
            on
        };
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        for node in &self.nodes {
            let label = match node.class {
                Some(c) => format!("%{} {} {:.0}us", node.id.index(), c.name(), node.cost_us),
                None => format!("%{}", node.id.index()),
            };
            let extra = if critical[node.id.index()] {
                ", peripheries=2, color=red"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\"{}];",
                node.id.index(),
                label,
                extra
            );
        }
        for (i, succs) in self.succs.iter().enumerate() {
            for &(t, kind) in succs {
                let style = match kind {
                    DepKind::True => "solid",
                    DepKind::Anti => "dashed",
                    DepKind::Output => "dotted",
                };
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [style={}, tooltip=\"{}\"];",
                    self.nodes[i].id.index(),
                    self.nodes[t].id.index(),
                    style,
                    kind.label()
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Incremental topological consumption of a [`DepGraph`] — the API a
/// DAG-parallel executor drives. Tracks the in-degree of every node;
/// [`DepConsumer::pop_ready`] hands out runnable nodes and
/// [`DepConsumer::complete`] retires one, unlocking its successors. The
/// consumer is purely sequential state: a parallel runtime wraps it in
/// its own lock and calls it from every runner.
#[derive(Debug, Clone)]
pub struct DepConsumer {
    indeg: Vec<usize>,
    ready: Vec<usize>,
    remaining: usize,
}

impl DepConsumer {
    /// Starts consuming `graph`: every node with no dependences is ready.
    pub fn new(graph: &DepGraph) -> Self {
        let indeg: Vec<usize> = (0..graph.nodes().len())
            .map(|i| graph.preds(i).len())
            .collect();
        let ready = (0..indeg.len()).filter(|&i| indeg[i] == 0).collect();
        DepConsumer {
            remaining: indeg.len(),
            indeg,
            ready,
        }
    }

    /// Takes one ready node (lowest schedule order last — the frontier is
    /// LIFO, which keeps runners near the schedule's locality), or `None`
    /// when nothing is currently runnable.
    pub fn pop_ready(&mut self) -> Option<usize> {
        self.ready.pop()
    }

    /// Retires a node whose execution finished, decrementing successor
    /// in-degrees and enqueueing any that become ready.
    ///
    /// # Panics
    ///
    /// Panics if a successor's in-degree underflows — i.e. `node` is
    /// completed twice.
    pub fn complete(&mut self, graph: &DepGraph, node: usize) {
        self.remaining -= 1;
        for &(s, _) in graph.succs(node) {
            self.indeg[s] = self.indeg[s]
                .checked_sub(1)
                .expect("node completed at most once");
            if self.indeg[s] == 0 {
                self.ready.push(s);
            }
        }
    }

    /// Nodes not yet retired by [`DepConsumer::complete`].
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Whether every node has been retired.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

/// Convenience: builds the DAG and returns its [`ParallelismEstimate`].
pub fn analyze(
    scheduled: &ScheduledProgram,
    map: &ScaleMap,
    model: &CostModel,
    hoist_rotations: bool,
) -> ParallelismEstimate {
    DepGraph::build(scheduled, map, model, hoist_rotations).estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::params::CompileParams;
    use crate::program::Program;
    use crate::schedule::InputSpec;
    use crate::Frac;

    fn scheduled(p: Program) -> ScheduledProgram {
        ScheduledProgram {
            params: CompileParams::new(30),
            inputs: p
                .inputs()
                .iter()
                .map(|_| InputSpec {
                    scale_bits: Frac::from(30u32),
                    level: 1,
                })
                .collect(),
            program: p,
        }
    }

    fn graph(p: Program) -> DepGraph {
        let s = scheduled(p);
        let map = s.validate().expect("valid schedule");
        DepGraph::build(&s, &map, &CostModel::paper_table3(), true)
    }

    #[test]
    fn chain_is_serial_fanout_is_parallel() {
        // Chain: span == work, width 1.
        let chain = {
            let b = Builder::new("chain", 8);
            let mut x = b.input("x");
            for _ in 0..4 {
                x = x.clone() + x;
            }
            b.finish(vec![x])
        };
        let g = graph(chain);
        let est = g.estimate();
        assert!((est.span_us - est.work_us).abs() < 1e-9);
        assert_eq!(est.max_width, 1);
        assert!((est.parallelism() - 1.0).abs() < 1e-9);

        // Fan-out: four independent squares of one input then a sum tree —
        // real width, span strictly below work.
        let fan = {
            let b = Builder::new("fan", 8);
            let x = b.input("x");
            let parts: Vec<_> = (0..4i64).map(|i| x.clone().rotate(i) + x.clone()).collect();
            let sum = parts.into_iter().reduce(|a, c| a + c).expect("nonempty");
            b.finish(vec![sum])
        };
        let g = graph(fan);
        let est = g.estimate();
        assert!(est.span_us < est.work_us);
        assert!(est.max_width >= 2, "width {}", est.max_width);
    }

    #[test]
    fn span_bounded_by_work_and_t_of_k_is_monotone() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let y = b.input("y");
        let e = x.clone() * x.clone()
            + y.clone() * y.clone()
            + x.clone() * y.clone()
            + x.clone().rotate(1) * y.clone()
            + y.rotate(2) * x;
        let p = b.finish(vec![e]);
        let g = graph(p);
        let est = g.estimate();
        assert!(est.span_us <= est.work_us + 1e-9);
        assert!((est.t_of_k[0].1 - est.work_us).abs() < 1e-9, "T(1) == work");
        let mut prev = f64::INFINITY;
        for &(_, t) in &est.t_of_k {
            assert!(t <= prev + 1e-9, "T(k) nonincreasing: {:?}", est.t_of_k);
            assert!(t >= est.span_us - 1e-9, "T(k) >= span");
            prev = t;
        }
    }

    #[test]
    fn anti_edges_order_readers_before_the_free() {
        // x is read by three ops; the last one (by schedule order) frees
        // it, so both earlier readers must be its ancestors.
        let mut p = Program::new("t", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let r1 = p.push(Op::Add(x, y));
        let r2 = p.push(Op::Sub(x, y));
        let r3 = p.push(Op::Add(x, x)); // frees x
        let s1 = p.push(Op::Add(r1, r2));
        let out = p.push(Op::Add(s1, r3));
        p.set_outputs(vec![out]);
        let g = graph(p);
        let f = g.free_at(x).expect("x is freed");
        assert_eq!(f, r3, "last reader frees");
        let fi = g.node(r3).unwrap();
        let anti: Vec<ValueId> = g
            .preds(fi)
            .iter()
            .filter(|&&(_, k)| k == DepKind::Anti)
            .map(|&(pn, _)| g.nodes()[pn].id)
            .collect();
        assert!(anti.contains(&r1) && anti.contains(&r2), "{anti:?}");
        // Outputs are pinned.
        assert_eq!(g.free_at(out), None);
    }

    #[test]
    fn hoisted_rotation_groups_are_ordered_after_their_leader() {
        let b = Builder::new("rots", 8);
        let x = b.input("x");
        let e = x.clone().rotate(1) + x.clone().rotate(2) + x.rotate(3);
        let p = b.finish(vec![e]);
        let s = scheduled(p);
        let map = s.validate().expect("valid");
        let hoisted = DepGraph::build(&s, &map, &CostModel::paper_table3(), true);
        let flat = DepGraph::build(&s, &map, &CostModel::paper_table3(), false);
        let count = |g: &DepGraph| -> usize {
            (0..g.nodes().len())
                .map(|i| {
                    g.preds(i)
                        .iter()
                        .filter(|&&(_, k)| k == DepKind::Output)
                        .count()
                })
                .sum()
        };
        assert_eq!(count(&hoisted), 2, "two members follow the leader");
        assert_eq!(count(&flat), 0);
        // Hoisting serializes the group: span must not shrink.
        assert!(hoisted.span_us() >= flat.span_us() - 1e-9);
    }

    #[test]
    fn critical_path_costs_sum_to_span() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let y = b.input("y");
        // Critical path: rotate → add → rotate → add; the (x + y) side arm
        // is cheap and off-path.
        let e = (x.clone().rotate(1) + y.clone()).rotate(2) + (x + y);
        let p = b.finish(vec![e]);
        let s = scheduled(p);
        let map = s.validate().expect("valid");
        let model = CostModel::paper_table3();
        let g = DepGraph::build(&s, &map, &model, true);
        let path = g.critical_path();
        let total: f64 = path
            .iter()
            .map(|&id| model.op_cost(&s.program, id, &map))
            .sum();
        assert!(
            (total - g.span_us()).abs() < 1e-6,
            "path {total} vs span {}",
            g.span_us()
        );
    }

    #[test]
    fn dot_export_mentions_nodes_and_edge_styles() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let sq = x.clone() * x.clone();
        let rots = x.clone().rotate(1) + x.rotate(2);
        let p = b.finish(vec![sq, rots]);
        let g = graph(p);
        let dot = g.to_dot("t");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("style=solid"));
        assert!(dot.contains("style=dotted"), "hoist group edges: {dot}");
        assert!(dot.contains("cipher x cipher"));
    }

    #[test]
    fn consumer_retires_every_node_in_topological_order() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        let y = b.input("y");
        let prod = x.clone() * y.clone();
        let rot = (x + y).rotate(1);
        let p = b.finish(vec![prod, rot]);
        let g = graph(p);
        let mut consumer = DepConsumer::new(&g);
        assert_eq!(consumer.remaining(), g.nodes().len());
        let mut done = vec![false; g.nodes().len()];
        while let Some(node) = consumer.pop_ready() {
            // Every dependence retired before its dependent runs.
            for &(p, _) in g.preds(node) {
                assert!(done[p], "pred of node {node} not yet complete");
            }
            done[node] = true;
            consumer.complete(&g, node);
        }
        assert!(consumer.is_done());
        assert!(done.iter().all(|&d| d), "every node retired");
    }

    #[test]
    fn empty_program_yields_default_estimate() {
        let mut p = Program::new("empty", 8);
        let x = p.push(Op::Input { name: "x".into() });
        p.set_outputs(vec![x]);
        let g = graph(p);
        let est = g.estimate();
        assert_eq!(est.work_us, 0.0);
        assert_eq!(est.span_us, 0.0);
        assert_eq!(est.max_width, 0);
        assert_eq!(est.t_of_k, vec![(1, 0.0)]);
        assert_eq!(est.parallelism(), 1.0);
    }
}
