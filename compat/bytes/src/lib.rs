//! A minimal, dependency-free drop-in for the subset of the `bytes` crate
//! this workspace uses (`Bytes`/`BytesMut` with little-endian `Buf`/`BufMut`
//! accessors). The build environment has no access to crates.io, so the
//! workspace vendors this shim via a path dependency.
//!
//! `Bytes` is a read cursor over an owned buffer: `get_*` consume from the
//! front and `Deref<Target = [u8]>` exposes the *remaining* bytes, matching
//! how the real crate's consuming reads behave.

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer with a consuming read cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

/// A growable byte buffer for writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl BytesMut {
    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Consuming little-endian reads (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes from the front.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain. Callers are expected to check
    /// [`Buf::remaining`] first, as the real crate's `get_*` methods do.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(
            self.remaining() >= n,
            "buffer underrun: need {n}, have {}",
            self.remaining()
        );
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

/// Little-endian writes (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u8(7);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f64_le(-1.5);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 4 + 1 + 8 + 8);
        let mut rd = Bytes::copy_from_slice(&frozen);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.get_u64_le(), u64::MAX - 3);
        assert_eq!(rd.get_f64_le(), -1.5);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn deref_exposes_remaining_bytes() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(&*b, &[1, 2, 3, 4]);
        b.get_u8();
        assert_eq!(&*b, &[2, 3, 4]);
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "buffer underrun")]
    fn underrun_panics() {
        let mut b = Bytes::copy_from_slice(&[1, 2]);
        let _ = b.get_u32_le();
    }
}
