//! The lint engine: walks abstract-domain results over a scheduled program
//! and emits [`Finding`]s.
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `F001` | error   | possible overflow: the static magnitude bound times the scale may exceed the level's modulus budget (`m·x_max < Q` unprovable) |
//! | `F002` | warning | dead rescale/modswitch: the result of a level-dropping op is never used |
//! | `F003` | warning | redundant upscale: dead, or immediately re-upscaled (mergeable) |
//! | `F004` | warning | level imbalance: a multiplication's operand scales differ by a whole rescale factor, pinning the smaller operand a level too high |
//! | `F005` | warning | over-provisioned modulus: every live ciphertext keeps ≥ R bits of slack, so the whole schedule provably fits one level lower |
//! | `F006` | warning | over-provisioned keys: rotation keys were requested for steps the schedule never rotates by |
//! | `F007` | warning | serialized critical path: an associative add/mul chain whose balanced reassociation provably cuts the span by ≥ 2× |
//! | `F008` | error   | premature free: the last-use table frees a value a later scheduled op still reads — a static use-after-free |
//! | `F009` | warning | unfusable mul chain: a cipher×cipher product escapes its rescale (extra consumer or intervening op), forfeiting the fused mul·relin·rescale kernel |
//!
//! `F001` is the static form of the fuzz oracle's `schedule_fits_backend`
//! gate: a lint-clean schedule under true input ranges cannot wrap in the
//! encrypted backend. `F005` is a proof, not a heuristic: slack ≥ R on
//! every live cipher value implies dropping every level by one preserves
//! every validator constraint. `F006` only runs when the caller supplies
//! the deployment's requested key set
//! ([`LintOptions::requested_rotation_steps`]); steps are compared modulo
//! the slot count, since steps in the same residue class share one Galois
//! key. `F007` reads the schedule through the dependence-DAG lens
//! (`fhe_ir::depgraph`): a left-leaning spine of `n` single-use associative
//! ops is a depth-`n` critical path that a balanced tree replaces with
//! depth `⌈log₂(n+1)⌉`. `F008` is the static form of a use-after-free: the
//! runtime recycles a ciphertext's buffer at its last *live* use, so a
//! later scheduled reader (necessarily dead code) would observe a recycled
//! buffer if executed. `F009` reads the schedule through the fusion
//! planner's lens (`fhe_ir::fusion`): a mul→rescale pair fuses into one
//! pass over the limbs only when the rescale is the product's sole
//! consumer; every blocked pair materializes a full-level intermediate the
//! fused kernel would have skipped.
//!
//! The machine-readable face of the table above is [`registry`]; the `lint`
//! CLI's `--explain` flag is backed by it, and a test asserts the two stay
//! in sync.
//!
//! These F-codes cover the *sequential* semantics of a schedule. The
//! *concurrent* face of the toolchain — the serve layer's queue/shutdown
//! and single-flight protocols and the CKKS work-stealing pool — is
//! checked by the `fhe-conc` interleaving model checker instead; its
//! `conc_smoke --json` binary emits a `ConcReport` (per-model schedule
//! counts and verdicts) that CI publishes next to lint findings. See the
//! `fhe_conc` crate docs and `DESIGN.md` §13 for that side of the story.

use fhe_ir::diag::{Finding, Severity};
use fhe_ir::{analysis, Op, ScheduleError, ScheduledProgram};

use crate::domain::{analyze, AnalysisCx};
use crate::interval::IntervalDomain;

/// One registry entry: everything the `lint` CLI needs to list and explain
/// a lint code.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// The lint code (`"F001"` … `"F009"`).
    pub code: &'static str,
    /// The severity the lint fires at.
    pub severity: Severity,
    /// One-line summary — kept in sync with the doc table at the top of
    /// this file (asserted by a test).
    pub summary: &'static str,
    /// Longer `--explain` text: what the lint proves, why it matters, and
    /// how to fix a finding.
    pub explanation: &'static str,
}

/// The lint registry, in code order. The doc table at the top of this file
/// is the human-readable face of this slice; a test asserts they agree.
pub fn registry() -> &'static [LintInfo] {
    &[
        LintInfo {
            code: "F001",
            severity: Severity::Error,
            summary: "possible overflow: the static magnitude bound times the scale may exceed \
                      the level's modulus budget (`m·x_max < Q` unprovable)",
            explanation: "The RNS-CKKS soundness hypothesis is m·x_max < Q: the slot magnitude \
                          times the encoding scale must fit the coefficient modulus. The \
                          interval analysis bounds every op's slot magnitude from the declared \
                          input ranges; F001 fires where bound·2^scale exceeds the level's \
                          modulus budget (minus one bit of margin), i.e. where encrypted \
                          evaluation may silently wrap. Fix: raise the level, lower the scale, \
                          rescale earlier, or tighten the declared input ranges.",
        },
        LintInfo {
            code: "F002",
            severity: Severity::Warning,
            summary: "dead rescale/modswitch: the result of a level-dropping op is never used",
            explanation: "A rescale or modswitch whose result has no users burns a level-N NTT \
                          pass (Table 3's most expensive rows after keyed ops) for nothing. \
                          These typically survive from a scale-management plan that was later \
                          rewritten. Fix: delete the op, or re-point consumers at its result.",
        },
        LintInfo {
            code: "F003",
            severity: Severity::Warning,
            summary: "redundant upscale: dead, or immediately re-upscaled (mergeable)",
            explanation: "An upscale multiplies by an encoded identity, so a dead upscale is a \
                          wasted cipher×plain multiply, and an upscale consumed only by another \
                          upscale is two multiplies where one (with the summed scale delta) \
                          suffices. Fix: delete or merge the upscales.",
        },
        LintInfo {
            code: "F004",
            severity: Severity::Warning,
            summary: "level imbalance: a multiplication's operand scales differ by a whole \
                      rescale factor, pinning the smaller operand a level too high",
            explanation: "The level-match rule forces both multiplication operands to the same \
                          level. When their scales differ by ≥ R bits, the smaller-scale \
                          operand is held a whole level above what its own scale needs, which \
                          inflates every op on its def-use chain (cost grows with level). Fix: \
                          rescale the larger operand before the multiply, or rebalance the \
                          producing expressions.",
        },
        LintInfo {
            code: "F005",
            severity: Severity::Warning,
            summary: "over-provisioned modulus: every live ciphertext keeps ≥ R bits of slack, \
                      so the whole schedule provably fits one level lower",
            explanation: "If every live ciphertext keeps at least one whole rescale factor of \
                          slack between its scale and its level's modulus budget, shifting all \
                          levels down by one preserves every validator constraint — a proof, \
                          not a heuristic. One level less means smaller keys, cheaper ops, and \
                          a smaller working set. Fix: compile with max_level − 1 or drop the \
                          fresh-encryption level by one.",
        },
        LintInfo {
            code: "F006",
            severity: Severity::Warning,
            summary: "over-provisioned keys: rotation keys were requested for steps the \
                      schedule never rotates by",
            explanation: "Each requested rotation step costs a full Galois key of key-switch \
                          material (2·L·(L+1) limbs), the dominant per-step memory term. F006 \
                          compares the requested step set against the schedule's rotations \
                          modulo the slot count (a residue class shares one key; class 0 is \
                          the identity and needs none) and warns on surplus keys. Fix: prune \
                          the requested key set to the steps actually used.",
        },
        LintInfo {
            code: "F007",
            severity: Severity::Warning,
            summary: "serialized critical path: an associative add/mul chain whose balanced \
                      reassociation provably cuts the span by ≥ 2×",
            explanation: "A left-leaning spine of n single-use cipher adds (or muls) is a \
                          depth-n critical path: no DAG-parallel runtime can finish it in \
                          fewer than n dependent steps. Reassociating the same combine into a \
                          balanced tree has depth ⌈log₂(n+1)⌉ over the identical leaves, so \
                          when n ≥ 2·⌈log₂(n+1)⌉ the rewrite provably at least halves the \
                          chain's span without changing the result (the work is unchanged). \
                          Fix: rewrite the reduction as a balanced tree, e.g. \
                          ((t₀+t₁)+(t₂+t₃))+… instead of (((t₀+t₁)+t₂)+t₃)+… .",
        },
        LintInfo {
            code: "F008",
            severity: Severity::Error,
            summary: "premature free: the last-use table frees a value a later scheduled op \
                      still reads — a static use-after-free",
            explanation: "The runtime recycles a ciphertext's buffer into the pool at its \
                          last *live* use (the discipline the static memory model and the \
                          dependence DAG encode). A schedule in which a later op still reads \
                          that value — necessarily dead code, since a live reader would have \
                          moved the free point — would observe a recycled buffer if executed: \
                          a use-after-free caught statically instead of at runtime. Fix: \
                          delete the dead reader, or add its result to the outputs so \
                          liveness keeps the operand alive.",
        },
        LintInfo {
            code: "F009",
            severity: Severity::Warning,
            summary: "unfusable mul chain: a cipher×cipher product escapes its rescale (extra \
                      consumer or intervening op), forfeiting the fused mul·relin·rescale \
                      kernel",
            explanation: "The parallel runtime executes a cipher×cipher multiply whose rescale \
                          is the product's *sole* consumer as one fused mul·relin·rescale pass \
                          over the limbs, never materializing the full-level relinearized \
                          intermediate. A product that is also read by another op (or is \
                          itself a program output), or whose rescale applies only after an \
                          intervening unary op, blocks the fusion: the intermediate must be \
                          materialized and the rescale runs as a separate level-N pass. Fix: \
                          re-point the extra consumers at the rescaled value (dividing their \
                          plaintext operands by the rescale factor if scales must match), or \
                          move the intervening op below the rescale — neg, modswitch and \
                          upscale all commute with it.",
        },
    ]
}

/// Looks up a lint code (`"F001"` … `"F009"`) in the [`registry`].
pub fn explain(code: &str) -> Option<&'static LintInfo> {
    registry().iter().find(|info| info.code == code)
}

/// Knobs for the lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Input ranges assumed by the magnitude analysis (default `[-1, 1]`
    /// for every input).
    pub intervals: IntervalDomain,
    /// Rotation steps the deployment provisions Galois keys for. When set,
    /// `F006` warns if the schedule's rotation steps are a strict subset —
    /// the surplus keys are pure key-switch-material waste. `None` (the
    /// default) disables the check.
    pub requested_rotation_steps: Option<Vec<i64>>,
}

/// Lints a scheduled program; returns all findings (empty = clean).
///
/// # Errors
///
/// Returns the validator's errors when the schedule is illegal — linting
/// presupposes a well-typed schedule.
pub fn lint_scheduled(
    scheduled: &ScheduledProgram,
    options: &LintOptions,
) -> Result<Vec<Finding>, Vec<ScheduleError>> {
    let map = scheduled.validate()?;
    let program = &scheduled.program;
    let cx = AnalysisCx::scheduled(program, &map);
    let intervals = analyze(&options.intervals, &cx);
    let live = analysis::live(program);
    let users = program.users();
    let rescale = f64::from(scheduled.params.rescale_bits);

    let mut findings = Vec::new();
    let mut min_slack: Option<(fhe_ir::ValueId, f64)> = None;

    for id in program.ids() {
        let is_live = live[id.index()];

        // F002 / F003(dead): scale management whose result is never used.
        if !is_live {
            match program.op(id) {
                Op::Rescale(_) | Op::ModSwitch(_) => {
                    findings.push(
                        Finding::new(
                            "F002",
                            Severity::Warning,
                            format!(
                                "dead {}: the result of {id} is never used",
                                program.op(id).mnemonic()
                            ),
                        )
                        .at(id),
                    );
                }
                Op::Upscale(..) => {
                    findings.push(
                        Finding::new(
                            "F003",
                            Severity::Warning,
                            format!("redundant upscale: the result of {id} is never used"),
                        )
                        .at(id),
                    );
                }
                _ => {}
            }
            continue;
        }

        // F003 (mergeable): an upscale consumed only by another upscale.
        if let Op::Upscale(..) = program.op(id) {
            let us = &users[id.index()];
            if !us.is_empty()
                && !program.outputs().contains(&id)
                && us.iter().all(|&u| matches!(program.op(u), Op::Upscale(..)))
            {
                findings.push(
                    Finding::new(
                        "F003",
                        Severity::Warning,
                        format!(
                            "redundant upscale: {id} is only consumed by another upscale \
                             ({}); merge the two",
                            us.iter()
                                .map(|u| u.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )
                    .at(id),
                );
            }
        }

        if !program.is_cipher(id) {
            continue;
        }
        let scale = map.scale_bits(id).to_f64();
        let level = map.level(id);
        let budget = f64::from(level) * rescale;

        // F001: the soundness hypothesis m·x_max < Q. One bit of margin
        // covers the `< Q/2` half-range plus chain primes sitting
        // fractionally below 2^rescale (same margin as the fuzz oracle's
        // backend-fit gate).
        let magnitude = intervals[id.index()].magnitude();
        if magnitude > 0.0 && (!magnitude.is_finite() || magnitude.log2() + scale > budget - 1.0) {
            findings.push(
                Finding::new(
                    "F001",
                    Severity::Error,
                    format!(
                        "possible overflow at {id} ({}): slot magnitude may reach {magnitude:.3e}, \
                         and {magnitude:.3e}·2^{scale:.0} exceeds the level-{level} modulus \
                         budget 2^{:.0}",
                        program.op(id).mnemonic(),
                        budget - 1.0
                    ),
                )
                .at(id),
            );
        }

        // F004: a multiplication whose operand scales differ by ≥ R pins
        // the lower-scale operand a whole level above what its own scale
        // needs (the level-match rule forces it up).
        if let Op::Mul(a, b) = program.op(id) {
            if program.is_cipher(*a) && program.is_cipher(*b) {
                let (sa, sb) = (map.scale_bits(*a).to_f64(), map.scale_bits(*b).to_f64());
                if (sa - sb).abs() >= rescale {
                    let poor = if sa < sb { *a } else { *b };
                    findings.push(
                        Finding::new(
                            "F004",
                            Severity::Warning,
                            format!(
                                "level imbalance at {id}: operand scales 2^{sa:.0} vs 2^{sb:.0} \
                                 differ by a full rescale factor; {poor} is held a level higher \
                                 than its scale needs"
                            ),
                        )
                        .at(id),
                    );
                }
            }
        }

        // Track the tightest slack for F005.
        let slack = budget - scale;
        if min_slack.is_none_or(|(_, s)| slack < s) {
            min_slack = Some((id, slack));
        }
    }

    // F005: if every live ciphertext keeps at least one whole limb of
    // slack, shifting all levels down by one preserves every constraint
    // (scale ≤ (l−1)·R follows from slack ≥ R; rescale/modswitch operands
    // stay ≥ level 2 because their results' slack pins them ≥ 3).
    if let Some((id, slack)) = min_slack {
        if slack >= rescale {
            findings.push(
                Finding::new(
                    "F005",
                    Severity::Warning,
                    format!(
                        "over-provisioned modulus: every live ciphertext keeps ≥ {rescale:.0} \
                         bits of slack (minimum {slack:.0} bits at {id}); the schedule fits \
                         one level lower"
                    ),
                )
                .at(id),
            );
        }
    }

    // F006: requested rotation-key steps the schedule never uses. A Galois
    // key is the dominant per-step memory term (2·L·(L+1) limbs of
    // key-switch material), so provisioning keys for steps the schedule
    // cannot rotate by is pure working-set waste. Steps are compared modulo
    // the slot count: a residue class shares one key, and class 0 is the
    // identity, which needs no key at all.
    if let Some(requested) = &options.requested_rotation_steps {
        let slots = program.slots() as i64;
        let norm = |k: i64| k.rem_euclid(slots);
        let mut used = std::collections::BTreeSet::new();
        let mut anchor = None;
        for id in program.ids() {
            if let Op::Rotate(_, k) = program.op(id) {
                if live[id.index()] && program.is_cipher(id) && norm(*k) != 0 {
                    used.insert(norm(*k));
                    anchor.get_or_insert(id);
                }
            }
        }
        let requested_classes: std::collections::BTreeSet<i64> = requested
            .iter()
            .map(|&k| norm(k))
            .filter(|&k| k != 0)
            .collect();
        let unused: Vec<i64> = requested
            .iter()
            .copied()
            .filter(|&k| norm(k) != 0 && !used.contains(&norm(k)))
            .collect();
        if !unused.is_empty() && used.is_subset(&requested_classes) {
            let list = |steps: &mut dyn Iterator<Item = i64>| {
                steps.map(|k| k.to_string()).collect::<Vec<_>>().join(", ")
            };
            let detail = if used.is_empty() {
                "the schedule performs no rotations".to_string()
            } else {
                format!(
                    "the schedule only rotates by steps {{{}}}",
                    list(&mut used.iter().copied())
                )
            };
            let mut f = Finding::new(
                "F006",
                Severity::Warning,
                format!(
                    "over-provisioned keys: rotation steps {{{}}} have keys requested but \
                     are never used ({detail}); each unused step costs a full Galois key \
                     of key-switch material",
                    list(&mut unused.iter().copied())
                ),
            );
            if let Some(id) = anchor {
                f = f.at(id);
            }
            findings.push(f);
        }
    }

    // F007: serialized associative chains. A spine op extends a chain when
    // one operand is a live, single-use, non-output cipher op of the same
    // associative kind — exactly the shape a balanced-tree reassociation
    // can rewrite without changing the result or the work.
    {
        let n = program.num_ops();
        let mut live_uses = vec![0usize; n];
        for id in program.ids() {
            if live[id.index()] {
                for a in program.op(id).operands() {
                    live_uses[a.index()] += 1;
                }
            }
        }
        let chain_kind = |id: fhe_ir::ValueId| -> Option<u8> {
            if !live[id.index()] || !program.is_cipher(id) {
                return None;
            }
            match program.op(id) {
                Op::Add(..) => Some(0),
                Op::Mul(..) => Some(1),
                _ => None,
            }
        };
        let mut chain = vec![0usize; n];
        let mut consumed = vec![false; n];
        for id in program.ids() {
            let Some(kind) = chain_kind(id) else { continue };
            let mut best: Option<fhe_ir::ValueId> = None;
            for a in program.op(id).operands() {
                if chain_kind(a) == Some(kind)
                    && live_uses[a.index()] == 1
                    && !program.outputs().contains(&a)
                    && chain[a.index()] > best.map_or(0, |b| chain[b.index()])
                {
                    best = Some(a);
                }
            }
            chain[id.index()] = 1 + best.map_or(0, |b| chain[b.index()]);
            if let Some(b) = best {
                consumed[b.index()] = true;
            }
        }
        for id in program.ids() {
            let len = chain[id.index()];
            if consumed[id.index()] || len < 2 {
                continue;
            }
            // len ops combine len + 1 leaves; a balanced tree over the same
            // leaves has depth ⌈log₂(len + 1)⌉.
            let leaves = len + 1;
            let depth = (usize::BITS - (leaves - 1).leading_zeros()) as usize;
            if len >= 2 * depth {
                let op_name = match program.op(id) {
                    Op::Mul(..) => "mul",
                    _ => "add",
                };
                findings.push(
                    Finding::new(
                        "F007",
                        Severity::Warning,
                        format!(
                            "serialized critical path: {len} chained cipher {op_name}s end at \
                             {id}, a depth-{len} spine; a balanced reassociation tree over the \
                             same {leaves} leaves has depth {depth}, cutting this chain's span \
                             {:.1}× — rewrite as ((t0 {s} t1) {s} (t2 {s} t3)) {s} …",
                            len as f64 / depth as f64,
                            s = if op_name == "mul" { "*" } else { "+" },
                        ),
                    )
                    .at(id),
                );
            }
        }
    }

    // F008: premature free. The runtime returns a ciphertext's buffer to
    // the pool at its last live use; a later scheduled reader (necessarily
    // dead code — a live reader would be the last use) would read a
    // recycled buffer if executed. Outputs are pinned and never freed.
    {
        let mut freed_at: Vec<Option<fhe_ir::ValueId>> = vec![None; program.num_ops()];
        for id in program.ids() {
            if !live[id.index()] {
                continue;
            }
            for a in program.op(id).operands() {
                if live[a.index()] && program.is_cipher(a) {
                    freed_at[a.index()] = Some(id);
                }
            }
        }
        for &o in program.outputs() {
            freed_at[o.index()] = None; // pinned
        }
        for id in program.ids() {
            if live[id.index()] {
                continue;
            }
            let mut prev = None;
            for a in program.op(id).operands() {
                if prev == Some(a) {
                    continue;
                }
                prev = Some(a);
                if let Some(f) = freed_at[a.index()] {
                    if id.index() > f.index() {
                        findings.push(
                            Finding::new(
                                "F008",
                                Severity::Error,
                                format!(
                                    "premature free: {id} reads {a}, but the last-use table \
                                     frees {a} at {f}; executing {id} would read a recycled \
                                     buffer (static use-after-free) — delete the dead op or \
                                     keep {a} live by making {id} reachable from an output"
                                ),
                            )
                            .at(id),
                        );
                    }
                }
            }
        }
    }

    // F009: mul→rescale pairs the fusion planner had to reject. Each
    // blocked pair materializes the full-level relinearized product the
    // fused mul·relin·rescale kernel would have skipped, plus a separate
    // level-N rescale pass.
    for b in fhe_ir::fusion::FusionPlan::plan(scheduled).blocked() {
        let message = match &b.blocker {
            fhe_ir::Blocker::ExtraConsumers { others, is_output } => {
                let mut pins = others
                    .iter()
                    .map(|o| o.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                if *is_output {
                    if !pins.is_empty() {
                        pins.push_str(" and ");
                    }
                    pins.push_str("the program outputs");
                }
                format!(
                    "unfusable mul chain: the product {} is rescaled at {} but also read by \
                     {pins}, so the full-level intermediate must be materialized instead of \
                     executing the fused mul·relin·rescale kernel — re-point the extra \
                     consumers at the rescaled value",
                    b.mul, b.rescale
                )
            }
            fhe_ir::Blocker::Intervening { via } => format!(
                "unfusable mul chain: {via} ({}) sits between the product {} and its rescale \
                 {}, blocking the fused mul·relin·rescale kernel — rescale the product \
                 directly and apply {via} afterwards (it commutes with the rescale)",
                scheduled.program.op(*via).mnemonic(),
                b.mul,
                b.rescale
            ),
        };
        findings.push(Finding::new("F009", Severity::Warning, message).at(b.mul));
    }

    findings.sort_by_key(|f| (f.op, std::cmp::Reverse(f.severity)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::{CompileParams, Frac, InputSpec, Program, ValueId};

    fn spec(scale: u32, level: u32) -> InputSpec {
        InputSpec {
            scale_bits: Frac::from(scale),
            level,
        }
    }

    fn lint(s: &ScheduledProgram) -> Vec<Finding> {
        lint_scheduled(s, &LintOptions::default()).expect("valid schedule")
    }

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn clean_single_input_is_finding_free() {
        let mut p = Program::new("ok", 4);
        let x = p.push(Op::Input { name: "x".into() });
        p.set_outputs(vec![x]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1)],
        };
        assert!(lint(&s).is_empty());
    }

    #[test]
    fn dead_rescale_fires_f002() {
        let mut p = Program::new("dead", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let _dead = p.push(Op::Rescale(x));
        p.set_outputs(vec![x]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(95, 2)],
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F002"]);
        assert_eq!(f[0].op, Some(ValueId(1)));
    }

    #[test]
    fn stacked_upscales_fire_f003() {
        let mut p = Program::new("up", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let u1 = p.push(Op::Upscale(x, Frac::from(5)));
        let u2 = p.push(Op::Upscale(u1, Frac::from(5)));
        p.set_outputs(vec![u2]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1)],
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F003"]);
        assert_eq!(f[0].op, Some(ValueId(1)));
    }

    #[test]
    fn overflow_risk_fires_f001() {
        // x·100 at scale 55, level 1: 100·2^55 > 2^59.
        let mut p = Program::new("ovf", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let c = p.push(Op::Const {
            value: 100.0.into(),
        });
        let m = p.push(Op::Mul(x, c));
        p.set_outputs(vec![m]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(20),
            inputs: vec![spec(35, 1)],
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F001"]);
        assert_eq!(f[0].severity, Severity::Error);
        assert_eq!(f[0].op, Some(ValueId(2)));
    }

    #[test]
    fn scale_imbalanced_mul_fires_f004() {
        // x at 100 bits, y at 35 bits, both level 2: diff 65 ≥ R = 60.
        let mut p = Program::new("imb", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let m = p.push(Op::Mul(x, y));
        p.set_outputs(vec![m]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(100, 3), spec(35, 3)],
        };
        let f = lint(&s);
        assert!(codes(&f).contains(&"F004"), "{f:?}");
    }

    #[test]
    fn uniform_slack_fires_f005() {
        // A single input at scale 35, level 2: slack 85 ≥ 60 everywhere.
        let mut p = Program::new("slack", 4);
        let x = p.push(Op::Input { name: "x".into() });
        p.set_outputs(vec![x]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 2)],
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F005"]);
    }

    #[test]
    fn unused_requested_keys_fire_f006() {
        let mut p = Program::new("keys", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let r = p.push(Op::Rotate(x, 1));
        p.set_outputs(vec![r]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1)],
        };
        let opts = LintOptions {
            requested_rotation_steps: Some(vec![1, 2, 4]),
            ..LintOptions::default()
        };
        let f = lint_scheduled(&s, &opts).expect("valid schedule");
        assert_eq!(codes(&f), vec!["F006"]);
        assert_eq!(f[0].op, Some(r), "anchored at the first live rotate");
        assert!(f[0].message.contains("{2, 4}"), "{}", f[0].message);
    }

    #[test]
    fn f006_respects_step_residue_classes_and_stays_inert() {
        let mut p = Program::new("keys", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let r = p.push(Op::Rotate(x, 1));
        p.set_outputs(vec![r]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1)],
        };
        // No requested set: the check never runs.
        assert!(lint(&s).is_empty());
        // 9 ≡ 1 and −7 ≡ 1 (mod 8): same Galois key, so nothing is unused.
        let opts = LintOptions {
            requested_rotation_steps: Some(vec![1, 9, -7]),
            ..LintOptions::default()
        };
        assert!(lint_scheduled(&s, &opts).expect("valid").is_empty());
        // Identity steps (0 mod slots) need no key and are never "unused".
        let opts = LintOptions {
            requested_rotation_steps: Some(vec![1, 0, 8]),
            ..LintOptions::default()
        };
        assert!(lint_scheduled(&s, &opts).expect("valid").is_empty());
        // A schedule rotating outside the requested set is a missing-key
        // problem for the runtime, not over-provisioning: stay quiet.
        let opts = LintOptions {
            requested_rotation_steps: Some(vec![2]),
            ..LintOptions::default()
        };
        assert!(lint_scheduled(&s, &opts).expect("valid").is_empty());
    }

    #[test]
    fn serialized_reduction_fires_f007_with_rewrite_hint() {
        // acc = ((((((x+x1)+x2)+x3)+x4)+x5)+x6): a 6-op spine; a balanced
        // tree over the 7 leaves has depth 3 → 2× span cut.
        let mut p = Program::new("serial", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let mut acc = x;
        let mut head = x;
        for i in 0..6 {
            let xi = p.push(Op::Input {
                name: format!("x{i}"),
            });
            head = p.push(Op::Add(acc, xi));
            acc = head;
        }
        p.set_outputs(vec![head]);
        let inputs = vec![spec(35, 1); 7];
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs,
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F007"]);
        assert_eq!(f[0].op, Some(head));
        assert!(
            f[0].message.contains("balanced reassociation"),
            "{}",
            f[0].message
        );
        assert!(f[0].message.contains("2.0×"), "{}", f[0].message);
    }

    #[test]
    fn balanced_and_short_reductions_stay_quiet() {
        // Balanced 8-leaf tree: longest same-kind spine is 3 < 2·depth.
        let mut p = Program::new("tree", 8);
        let leaves: Vec<_> = (0..8)
            .map(|i| {
                p.push(Op::Input {
                    name: format!("x{i}"),
                })
            })
            .collect();
        let mut layer = leaves;
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| p.push(Op::Add(pair[0], pair[1])))
                .collect();
        }
        let root = layer[0];
        p.set_outputs(vec![root]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1); 8],
        };
        assert!(lint(&s).is_empty(), "{:?}", lint(&s));

        // A 5-op spine cuts span only 5/3 < 2×: stays quiet.
        let mut p = Program::new("short", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let mut acc = x;
        for i in 0..5 {
            let xi = p.push(Op::Input {
                name: format!("x{i}"),
            });
            acc = p.push(Op::Add(acc, xi));
        }
        p.set_outputs(vec![acc]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1); 6],
        };
        assert!(lint(&s).is_empty(), "{:?}", lint(&s));
    }

    #[test]
    fn premature_free_fires_f008() {
        // a = x + y is x's and y's last live use; the dead sub scheduled
        // after it reads both after their free points.
        let mut p = Program::new("uaf", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let a = p.push(Op::Add(x, y));
        let dead = p.push(Op::Sub(x, y));
        p.set_outputs(vec![a]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1), spec(35, 1)],
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F008", "F008"]);
        assert!(f.iter().all(|f| f.severity == Severity::Error));
        assert_eq!(f[0].op, Some(dead));
        assert!(f[0].message.contains("use-after-free"), "{}", f[0].message);
    }

    #[test]
    fn f008_spares_pinned_outputs_and_reads_before_the_free() {
        // x is an output: pinned, never freed, so the dead reader is safe.
        let mut p = Program::new("pinned", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let a = p.push(Op::Add(x, y));
        let _dead = p.push(Op::Neg(x));
        p.set_outputs(vec![a, x]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1), spec(35, 1)],
        };
        assert!(lint(&s).is_empty(), "{:?}", lint(&s));

        // The dead reader runs before y's last live use: no hazard.
        let mut p = Program::new("before", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let _dead = p.push(Op::Neg(y));
        let a = p.push(Op::Add(x, y));
        p.set_outputs(vec![a, x]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(35, 1), spec(35, 1)],
        };
        assert!(lint(&s).is_empty(), "{:?}", lint(&s));
    }

    #[test]
    fn escaping_product_fires_f009() {
        // The product %2 is rescaled at %3 but also read by %4: the
        // fusion planner must reject the pair and the lint must say why.
        let mut p = Program::new("escape", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let m = p.push(Op::Mul(x, y));
        let r = p.push(Op::Rescale(m));
        let extra = p.push(Op::Add(m, m));
        p.set_outputs(vec![r, extra]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(50, 2), spec(50, 2)],
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F009"]);
        assert_eq!(f[0].op, Some(m));
        assert!(
            f[0].message.contains(&extra.to_string()),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn intervening_op_fires_f009_and_fusable_pairs_stay_quiet() {
        // mul → neg → rescale: the rescale exists but an op intervenes.
        let mut p = Program::new("between", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let m = p.push(Op::Mul(x, x));
        let n = p.push(Op::Neg(m));
        let r = p.push(Op::Rescale(n));
        p.set_outputs(vec![r]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(50, 2)],
        };
        let f = lint(&s);
        assert_eq!(codes(&f), vec!["F009"]);
        assert_eq!(f[0].op, Some(m));
        assert!(f[0].message.contains("neg"), "{}", f[0].message);

        // The canonical fusable shape — the rescale is the product's sole
        // consumer — must not warn.
        let mut p = Program::new("fused", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let m = p.push(Op::Mul(x, x));
        let r = p.push(Op::Rescale(m));
        p.set_outputs(vec![r]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(50, 2)],
        };
        assert!(lint(&s).is_empty(), "{:?}", lint(&s));
    }

    #[test]
    fn registry_matches_the_doc_table() {
        // The doc table at the top of this file is the human-readable face
        // of `registry()`: same codes, same severities, same summaries.
        let source = include_str!("lint.rs");
        let mut table = Vec::new();
        for line in source.lines() {
            let line = line.trim_start();
            let Some(rest) = line.strip_prefix("//! | `F") else {
                continue;
            };
            let mut cells = rest.split('|').map(str::trim);
            let code = format!("F{}", cells.next().unwrap().trim_end_matches('`').trim());
            let severity = cells.next().unwrap().to_string();
            let meaning = cells.next().unwrap().to_string();
            table.push((code, severity, meaning));
        }
        let registry = super::registry();
        assert_eq!(
            table.len(),
            registry.len(),
            "doc table rows vs registry entries"
        );
        for ((code, severity, meaning), info) in table.iter().zip(registry) {
            assert_eq!(code, info.code);
            assert_eq!(severity, info.severity.label(), "{code} severity");
            let collapse = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
            assert_eq!(collapse(meaning), collapse(info.summary), "{code} summary");
        }
        assert!(super::explain("F007").is_some());
        assert!(super::explain("F999").is_none());
    }

    #[test]
    fn invalid_schedule_is_an_error_not_findings() {
        let mut p = Program::new("bad", 4);
        let x = p.push(Op::Input { name: "x".into() });
        p.set_outputs(vec![x]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(35),
            inputs: vec![spec(10, 1)], // below waterline
        };
        assert!(lint_scheduled(&s, &LintOptions::default()).is_err());
    }
}
