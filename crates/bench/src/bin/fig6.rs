//! Fig. 6: estimated program latency of EVA, Hecate and this work for
//! waterline parameters 15–50, per benchmark (seconds, Table 3 cost model).
//!
//! `--fast` uses reduced benchmarks and exploration budgets.

use fhe_bench::{hecate_budget, print_table, run_eva, run_hecate, run_reserve, CliArgs};
use reserve_core::Mode;

fn main() {
    let args = CliArgs::parse();
    let waterlines: Vec<u32> = (15..=50).step_by(5).collect();
    let suite = fhe_bench::selected_suite(&args);

    println!("Fig. 6: Latency (s) of EVA, Hecate, and this work for waterlines 15-50.\n");
    let mut improvement_over_eva = Vec::new();
    let mut vs_hecate = Vec::new();
    for w in &suite {
        eprintln!("sweeping {} ...", w.name);
        let headers = ["W", "EVA (s)", "Hecate (s)", "This work (s)", "vs EVA"];
        // The eight waterline points are independent; sweep them on scoped
        // threads (latency here is *estimated*, so parallelism cannot skew
        // the results the way it would for wall-clock measurements).
        let points: Vec<(f64, f64, f64)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = waterlines
                .iter()
                .map(|&wl| {
                    let program = &w.program;
                    let args = &args;
                    scope.spawn(move |_| {
                        let eva = run_eva(program, wl);
                        // Sweeps multiply Hecate's cost by the point count;
                        // cap the budget to keep the harness to minutes.
                        let budget = hecate_budget(args, program.num_ops()).min(2000);
                        let hec = run_hecate(program, wl, budget);
                        let ours = run_reserve(program, wl, Mode::Full);
                        (eva.latency_us, hec.latency_us, ours.latency_us)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("sweep thread")).collect()
        })
        .expect("crossbeam scope");
        let mut rows = Vec::new();
        for (&wl, &(eva, hec, ours)) in waterlines.iter().zip(&points) {
            improvement_over_eva.push(ours / eva);
            vs_hecate.push(ours / hec);
            rows.push(vec![
                wl.to_string(),
                format!("{:.3}", eva / 1e6),
                format!("{:.3}", hec / 1e6),
                format!("{:.3}", ours / 1e6),
                format!("{:+.1}%", (ours / eva - 1.0) * 100.0),
            ]);
        }
        println!("({})", w.name);
        print_table(&headers, &rows);
        println!();
    }
    let geo = fhe_bench::geomean(&improvement_over_eva);
    let geo_h = fhe_bench::geomean(&vs_hecate);
    println!(
        "geomean latency vs EVA: {:.3} ({:.1}% faster; paper reports 41.8% improvement)",
        geo,
        (1.0 - geo) * 100.0
    );
    println!("geomean latency vs Hecate: {geo_h:.3} (paper: similar performance)");
}
