//! Exact rational arithmetic for log-domain scale quantities.
//!
//! The reserve formalism manipulates *relative* (log base `R`) scales,
//! reserves and waterlines: `ρ = log_R r`, `ω = log_R W`, with formulas such
//! as `l = ⌈ρ + 2ω⌉` and `ρ₁ = ρ₂ = (l + ρ)/2`. These need exact ceiling and
//! fractional-part computation; binary floating point would mis-detect level
//! mismatches when `ρ + 2ω` lands exactly on an integer. [`Frac`] is a small
//! always-normalized rational over `i128`, sufficient for every quantity in
//! this crate (denominators stay bounded by `R_bits · 2^depth`).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0`, always reduced.
///
/// # Examples
///
/// ```
/// use fhe_ir::Frac;
/// let omega = Frac::ratio(20, 60); // waterline 20 bits over R = 2^60
/// let rho = Frac::ratio(30, 60);
/// assert_eq!((rho + omega * Frac::from(2)).ceil(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frac {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

impl Frac {
    /// Zero.
    pub const ZERO: Frac = Frac { num: 0, den: 1 };
    /// One.
    pub const ONE: Frac = Frac { num: 1, den: 1 };

    /// Creates the rational `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn ratio(num: i128, den: i128) -> Self {
        assert!(den != 0, "Frac denominator must be nonzero");
        let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd(num, den);
        if g == 0 {
            return Frac { num: 0, den: 1 };
        }
        Frac {
            num: num / g,
            den: den / g,
        }
    }

    /// Numerator of the reduced fraction.
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator of the reduced fraction (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Whether this value is an exact integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Whether the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Ceiling, `⌈x⌉`.
    pub fn ceil(self) -> i128 {
        self.num.div_euclid(self.den) + i128::from(self.num.rem_euclid(self.den) != 0)
    }

    /// Floor, `⌊x⌋`.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The paper's fractional-part function `{x} = x + 1 − ⌈x⌉`.
    ///
    /// Unlike the conventional fractional part, `{x} = 1` (not `0`) when `x`
    /// is an integer: `{1} = 1`. The result is always in `(0, 1]`.
    ///
    /// ```
    /// use fhe_ir::Frac;
    /// assert_eq!(Frac::from(1).paper_frac(), Frac::from(1));
    /// assert_eq!(Frac::ratio(3, 2).paper_frac(), Frac::ratio(1, 2));
    /// ```
    pub fn paper_frac(self) -> Frac {
        self + Frac::ONE - Frac::from(self.ceil())
    }

    /// Conventional fractional part `x − ⌊x⌋`, in `[0, 1)`.
    pub fn fract(self) -> Frac {
        self - Frac::from(self.floor())
    }

    /// Smaller of two values.
    pub fn min(self, other: Frac) -> Frac {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Larger of two values.
    pub fn max(self, other: Frac) -> Frac {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Lossy conversion to `f64` (for cost interpolation and reporting only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl From<i128> for Frac {
    fn from(v: i128) -> Self {
        Frac { num: v, den: 1 }
    }
}

impl From<i32> for Frac {
    fn from(v: i32) -> Self {
        Frac {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i64> for Frac {
    fn from(v: i64) -> Self {
        Frac {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<u32> for Frac {
    fn from(v: u32) -> Self {
        Frac {
            num: v as i128,
            den: 1,
        }
    }
}

impl Add for Frac {
    type Output = Frac;
    fn add(self, rhs: Frac) -> Frac {
        Frac::ratio(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Frac {
    type Output = Frac;
    fn sub(self, rhs: Frac) -> Frac {
        Frac::ratio(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Frac {
    type Output = Frac;
    fn mul(self, rhs: Frac) -> Frac {
        Frac::ratio(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Frac {
    type Output = Frac;
    fn div(self, rhs: Frac) -> Frac {
        assert!(rhs.num != 0, "division of Frac by zero");
        Frac::ratio(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Frac {
    type Output = Frac;
    fn neg(self) -> Frac {
        Frac {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Frac {
    fn add_assign(&mut self, rhs: Frac) {
        *self = *self + rhs;
    }
}

impl SubAssign for Frac {
    fn sub_assign(&mut self, rhs: Frac) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Frac {
    fn partial_cmp(&self, other: &Frac) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Frac {
    fn cmp(&self, other: &Frac) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Debug for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Default for Frac {
    fn default() -> Self {
        Frac::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_normalizes() {
        assert_eq!(Frac::ratio(2, 4), Frac::ratio(1, 2));
        assert_eq!(Frac::ratio(-2, -4), Frac::ratio(1, 2));
        assert_eq!(Frac::ratio(2, -4), Frac::ratio(-1, 2));
        assert_eq!(Frac::ratio(0, 7), Frac::ZERO);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Frac::ratio(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Frac::ratio(1, 3);
        let b = Frac::ratio(1, 6);
        assert_eq!(a + b, Frac::ratio(1, 2));
        assert_eq!(a - b, Frac::ratio(1, 6));
        assert_eq!(a * b, Frac::ratio(1, 18));
        assert_eq!(a / b, Frac::from(2));
        assert_eq!(-a, Frac::ratio(-1, 3));
    }

    #[test]
    fn ceil_floor_negative() {
        assert_eq!(Frac::ratio(-1, 2).ceil(), 0);
        assert_eq!(Frac::ratio(-1, 2).floor(), -1);
        assert_eq!(Frac::ratio(-3, 2).ceil(), -1);
        assert_eq!(Frac::from(-2).ceil(), -2);
        assert_eq!(Frac::from(-2).floor(), -2);
    }

    #[test]
    fn paper_frac_matches_definition() {
        // {1} = 1, not 0 — the paper's convention.
        assert_eq!(Frac::from(1).paper_frac(), Frac::ONE);
        assert_eq!(Frac::from(5).paper_frac(), Frac::ONE);
        assert_eq!(Frac::ratio(7, 6).paper_frac(), Frac::ratio(1, 6));
        // redistribution example from §6.3: {30/60 + 2·20/60} = 10/60
        let x = Frac::ratio(30, 60) + Frac::from(2) * Frac::ratio(20, 60);
        assert_eq!(x.paper_frac(), Frac::ratio(10, 60));
    }

    #[test]
    fn ordering() {
        assert!(Frac::ratio(1, 3) < Frac::ratio(1, 2));
        assert!(Frac::ratio(-1, 3) > Frac::ratio(-1, 2));
        assert_eq!(Frac::ratio(2, 6).max(Frac::ratio(1, 2)), Frac::ratio(1, 2));
        assert_eq!(Frac::ratio(2, 6).min(Frac::ratio(1, 2)), Frac::ratio(1, 3));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Frac::ratio(3, 2)), "3/2");
        assert_eq!(format!("{}", Frac::from(4)), "4");
    }
}
