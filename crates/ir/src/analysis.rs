//! Dataflow analyses over IR programs: multiplicative depth, liveness, and
//! level estimation used by the allocation-ordering heuristic (§6.1).

use crate::op::Op;
use crate::program::Program;
use crate::{CompileParams, Frac};

/// Multiplicative depth of every value: the maximum number of scale-consuming
/// multiplications on any path from the value to a program output,
/// **starting from 1, not 0** (§6.1).
///
/// For the paper's running example `x³·(y²+y)` this yields
/// `x:4 y:3 x²:3 x³:2 y²:2 s:2 q:1` (Fig. 3a).
///
/// Values that cannot reach an output get depth 1.
pub fn mult_depth(program: &Program) -> Vec<u32> {
    let mut depth = vec![1u32; program.num_ops()];
    // Backward walk: depth(v) = max over users u of depth(u) + [u is a
    // scale-consuming mul]; outputs (or dead values) keep the base of 1.
    for id in program.ids().rev() {
        let d = depth[id.index()];
        let consumes = matches!(program.op(id), Op::Mul(..)) && program.is_cipher(id);
        let operand_depth = d + u32::from(consumes);
        for operand in program.op(id).operands() {
            let slot = &mut depth[operand.index()];
            *slot = (*slot).max(operand_depth);
        }
    }
    depth
}

/// Which values can reach a program output (everything else is dead code).
pub fn live(program: &Program) -> Vec<bool> {
    let mut live = vec![false; program.num_ops()];
    for &o in program.outputs() {
        live[o.index()] = true;
    }
    for id in program.ids().rev() {
        if live[id.index()] {
            for operand in program.op(id).operands() {
                live[operand.index()] = true;
            }
        }
    }
    live
}

/// The §6.1 pre-allocation level estimate `1 + depth · ω` for every value —
/// a lower bound assuming the minimal level increase `ω` per multiplication.
///
/// The estimate is fractional (e.g. `x³` in Fig. 3a estimates level
/// `1 + 2·(20/60) = 1.67`); the cost model interpolates latencies at
/// fractional levels.
pub fn estimated_levels(program: &Program, params: &CompileParams) -> Vec<Frac> {
    let depth = mult_depth(program);
    depth
        .iter()
        .map(|&d| Frac::ONE + Frac::from(d) * params.omega())
        .collect()
}

/// Maximum number of scale-consuming multiplications on any live path — the
/// circuit depth a scheme's modulus chain must support. (This is
/// `max(mult_depth) − 1` because [`mult_depth`] starts at 1.)
pub fn circuit_depth(program: &Program) -> u32 {
    let depth = mult_depth(program);
    let live = live(program);
    program
        .ids()
        .filter(|id| live[id.index()])
        .map(|id| depth[id.index()])
        .max()
        .unwrap_or(1)
        .saturating_sub(1)
}

/// Per-value use counts (an op using a value twice counts it twice; program
/// outputs add one use each).
pub fn use_counts(program: &Program) -> Vec<u32> {
    let mut counts = vec![0u32; program.num_ops()];
    for id in program.ids() {
        for operand in program.op(id).operands() {
            counts[operand.index()] += 1;
        }
    }
    for &o in program.outputs() {
        counts[o.index()] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::op::ValueId;

    fn fig2a() -> (Program, [ValueId; 7]) {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let x2 = x.clone() * x.clone();
        let x3 = x.clone() * x2.clone();
        let y2 = y.clone() * y.clone();
        let s = y2.clone() + y.clone();
        let q = x3.clone() * s.clone();
        let ids = [x.id(), y.id(), x2.id(), x3.id(), y2.id(), s.id(), q.id()];
        (b.finish(vec![q]), ids)
    }

    #[test]
    fn mult_depth_matches_fig3a() {
        let (p, [x, y, x2, x3, y2, s, q]) = fig2a();
        let d = mult_depth(&p);
        assert_eq!(d[x.index()], 4);
        assert_eq!(d[y.index()], 3);
        assert_eq!(d[x2.index()], 3);
        assert_eq!(d[x3.index()], 2);
        assert_eq!(d[y2.index()], 2);
        assert_eq!(d[s.index()], 2);
        assert_eq!(d[q.index()], 1);
        assert_eq!(circuit_depth(&p), 3, "three muls on the deepest path");
    }

    #[test]
    fn estimated_levels_match_fig3a() {
        let (p, [x, y, _, x3, _, _, q]) = fig2a();
        let params = CompileParams::new(20);
        let lv = estimated_levels(&p, &params);
        // Fig. 3a "Level" row: x 2.3, y 2, x3 1.6, q 1.3.
        assert_eq!(lv[x.index()], Frac::ratio(7, 3));
        assert_eq!(lv[y.index()], Frac::from(2));
        assert_eq!(lv[x3.index()], Frac::ratio(5, 3));
        assert_eq!(lv[q.index()], Frac::ratio(4, 3));
    }

    #[test]
    fn live_marks_only_reachable() {
        let b = Builder::new("dead", 4);
        let x = b.input("x");
        let used = x.clone() * x.clone();
        let dead = x.clone().rotate(1);
        let dead_id = dead.id();
        drop(dead);
        let p = b.finish(vec![used]);
        let l = live(&p);
        assert!(l[0] && l[1]);
        assert!(!l[dead_id.index()]);
    }

    #[test]
    fn use_counts_include_outputs_and_duplicates() {
        let (p, [x, ..]) = fig2a();
        let c = use_counts(&p);
        // x used by x2 (twice) and x3 (once).
        assert_eq!(c[x.index()], 3);
        // q is only an output.
        assert_eq!(c[p.outputs()[0].index()], 1);
    }
}
