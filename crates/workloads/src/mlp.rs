//! Multi-layer perceptron inference (MLP): two banded fully-connected
//! layers with squaring activations on a packed vector, batch-SIMD over the
//! slot dimension — the paper's "two matrix multiplications and two square
//! operations with a single input".

use std::collections::HashMap;

use fhe_ir::{Builder, Program};

use crate::data;
use crate::helpers::matvec_diagonals;

/// Builds the MLP benchmark: `x → FC(d₁) → (·)² → FC(d₂) → (·)²` where the
/// FC layers use `diagonals` plaintext diagonals each.
pub fn mlp(slots: usize, diagonals: usize, seed: u64) -> Program {
    let b = Builder::new("mlp", slots);
    let x = b.input("x");
    let w1 = data::diagonals(diagonals, slots, seed);
    let w2 = data::diagonals(diagonals, slots, seed ^ 0x77);
    let h = matvec_diagonals(&b, &x, &w1);
    let h = h.clone() * h;
    let o = matvec_diagonals(&b, &h, &w2);
    let o = o.clone() * o;
    b.finish(vec![o])
}

/// Input bindings for [`mlp`].
pub fn mlp_inputs(slots: usize, seed: u64) -> HashMap<String, Vec<f64>> {
    let mut m = HashMap::new();
    m.insert("x".to_string(), data::uniform(slots, -1.0, 1.0, seed));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::analysis;
    use fhe_runtime::plain;

    #[test]
    fn op_count_matches_paper_ballpark() {
        // Paper Table 4: MLP 462 ops, depth Conv-x²-…: here 2 FC + 2 sq.
        let p = mlp(16384, 58, 1);
        assert!((380..=560).contains(&p.num_ops()), "MLP: {}", p.num_ops());
        assert_eq!(analysis::circuit_depth(&p), 4);
    }

    #[test]
    fn forward_pass_matches_manual_computation() {
        let slots = 8;
        let p = mlp(slots, 2, 3);
        let inputs = mlp_inputs(slots, 4);
        let out = plain::execute(&p, &inputs);
        // Recompute in the clear.
        let x = &inputs["x"];
        let w1 = data::diagonals(2, slots, 3);
        let w2 = data::diagonals(2, slots, 3 ^ 0x77);
        let fc = |x: &[f64], w: &[Vec<f64>]| -> Vec<f64> {
            (0..slots)
                .map(|i| {
                    w.iter()
                        .enumerate()
                        .map(|(d, diag)| diag[i] * x[(i + d) % slots])
                        .sum::<f64>()
                })
                .collect()
        };
        let h: Vec<f64> = fc(x, &w1).iter().map(|v| v * v).collect();
        let o: Vec<f64> = fc(&h, &w2).iter().map(|v| v * v).collect();
        for (a, e) in out[0].iter().zip(&o) {
            assert!((a - e).abs() < 1e-12, "{a} vs {e}");
        }
    }
}
