//! `conc_smoke` — runs the concurrency model suite and emits a
//! machine-readable [`ConcReport`].
//!
//! In checker builds (`RUSTFLAGS="--cfg fhe_conc"`) this explores
//! interleavings for real: the two planted regressions (the PR 7
//! scan→park race, the PR 9 submit/shutdown race) must be *rediscovered*
//! — their records count as passed only when the checker finds the bug —
//! and the fixed protocols must survive every explored schedule. In
//! ordinary builds the checker-only skeletons don't exist; the models
//! over shipped types (`Pool`, `CompileCache`, `PolyPool`) run once with
//! real threads and report `"passthrough"`, so the binary stays useful as
//! a cheap smoke test in both build modes.
//!
//! Usage: `conc_smoke [--json]`. `--json` prints the report to stdout in
//! the hand-rolled JSON shape of [`ConcReport::to_json`]; without it a
//! human-readable table is printed. Exit status is 0 iff every record
//! passed. On a genuine model failure, `FHE_CONC_TRACE_DIR` (if set)
//! receives the numbered counterexample schedule.

use std::process::ExitCode;
use std::time::Instant;

use fhe_ckks::{PolyPool, Pool};
use fhe_conc::sync::atomic::{AtomicUsize, Ordering};
use fhe_conc::sync::{thread, Arc};
use fhe_conc::{check, ConcReport, Config, ModelRecord};
use fhe_ir::{text, CompileParams};
use fhe_serve::CompileCache;
use reserve_core::ReserveCompiler;

/// Same committed seed as `tests/conc_models.rs`, so a CI failure here
/// replays bit-identically under the test suite.
const PCT_SEED: u64 = 0x5EED_CAFE_F00D_0001;
const PCT_EXECUTIONS: u64 = 200;

/// One entry in the smoke suite. `expect_failure` marks the planted
/// regressions: their record passes only when the checker *finds* the
/// race.
struct Spec {
    name: &'static str,
    config: Config,
    expect_failure: bool,
    run: fn(),
}

fn tiny_program(name: &str) -> fhe_ir::Program {
    let b = fhe_ir::Builder::new(name, 4);
    let x = b.input("x");
    let y = b.input("y");
    text::parse(&text::print(&b.finish(vec![x * y]))).expect("round-trips")
}

// ---- models over shipped types (compile in both build modes) ----

fn pool_run_drop() {
    let pool = Pool::new(1);
    let hits = AtomicUsize::new(0);
    pool.run(2, 2, &|_| {
        hits.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(hits.load(Ordering::SeqCst), 2, "every job ran exactly once");
    drop(pool);
}

fn cache_single_flight() {
    let cache = Arc::new(CompileCache::new(None));
    let program = Arc::new(tiny_program("sf"));
    let params = CompileParams::new(30);
    let t = {
        let (cache, program) = (cache.clone(), program.clone());
        thread::spawn(move || {
            let compiler = ReserveCompiler::full();
            cache
                .get_or_compile(&program, &params, &compiler)
                .expect("compiles")
                .scheduled
        })
    };
    let compiler = ReserveCompiler::full();
    let mine = cache
        .get_or_compile(&program, &params, &compiler)
        .expect("compiles")
        .scheduled;
    let theirs = t.join().expect("peer compiles");
    assert!(Arc::ptr_eq(&mine, &theirs), "one cached schedule shared");
    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "exactly one compile");
    assert_eq!(stats.hits, 1, "the flight-race loser hits");
}

fn polypool_counters() {
    const DEGREE: usize = 8;
    const LIMB_BYTES: u64 = (DEGREE * 8) as u64;
    let pool = Arc::new(PolyPool::new(DEGREE));
    let worker = {
        let pool = pool.clone();
        thread::spawn(move || {
            let bufs = pool.take_raw(1);
            pool.put(bufs);
        })
    };
    let bufs = pool.take_raw(2);
    pool.put(bufs);
    worker.join().expect("worker balances its traffic");
    let s = pool.stats();
    assert_eq!(s.hits + s.misses, 3, "every checkout counted once");
    assert_eq!(s.returns, 3, "every buffer returned exactly once");
    assert_eq!(s.live_bytes, 0, "balanced take/put leaves nothing live");
    assert_eq!(s.free_bytes, (s.returns - s.hits) * LIMB_BYTES);
}

// ---- checker-only skeletons (the planted regressions + fixes) ----

#[cfg(fhe_conc)]
fn park_unversioned() {
    fhe_ckks::par::conc_model::park_model(false);
}

#[cfg(fhe_conc)]
fn park_versioned() {
    fhe_ckks::par::conc_model::park_model(true);
}

#[cfg(fhe_conc)]
fn submit_shutdown_unchecked() {
    fhe_serve::server::conc_model::submit_shutdown_model(false);
}

#[cfg(fhe_conc)]
fn submit_shutdown_fixed() {
    fhe_serve::server::conc_model::submit_shutdown_model(true);
}

#[cfg(fhe_conc)]
fn quarantine_admission() {
    fhe_serve::server::conc_model::quarantine_admission_model();
}

fn suite() -> Vec<Spec> {
    let pct = || Config::pct(PCT_SEED, PCT_EXECUTIONS);
    #[allow(unused_mut)]
    let mut specs = vec![
        Spec {
            name: "pool-run-drop",
            config: pct(),
            expect_failure: false,
            run: pool_run_drop,
        },
        Spec {
            name: "cache-single-flight",
            config: Config::exhaustive(),
            expect_failure: false,
            run: cache_single_flight,
        },
        Spec {
            name: "polypool-counters",
            config: Config::exhaustive(),
            expect_failure: false,
            run: polypool_counters,
        },
    ];
    #[cfg(fhe_conc)]
    specs.extend([
        Spec {
            name: "park-unversioned",
            config: Config::exhaustive(),
            expect_failure: true,
            run: park_unversioned,
        },
        Spec {
            name: "park-versioned",
            config: Config::exhaustive(),
            expect_failure: false,
            run: park_versioned,
        },
        Spec {
            name: "submit-shutdown-unchecked",
            config: Config::exhaustive(),
            expect_failure: true,
            run: submit_shutdown_unchecked,
        },
        Spec {
            name: "submit-shutdown-fixed",
            config: Config::exhaustive(),
            expect_failure: false,
            run: submit_shutdown_fixed,
        },
        Spec {
            name: "quarantine-admission",
            config: Config::exhaustive(),
            expect_failure: false,
            run: quarantine_admission,
        },
    ]);
    specs
}

fn main() -> ExitCode {
    let json = std::env::args().any(|a| a == "--json");
    let checker_enabled = cfg!(fhe_conc);

    let mut report = ConcReport {
        checker_enabled,
        models: Vec::new(),
    };
    for spec in suite() {
        let mode = if checker_enabled {
            spec.config.mode.label().to_string()
        } else {
            "passthrough".to_string()
        };
        let start = Instant::now();
        let outcome = check(spec.name, spec.config, spec.run);
        let wall_ms = start.elapsed().as_millis() as u64;
        let passed = if spec.expect_failure {
            outcome.failure.is_some()
        } else {
            outcome.passed()
        };
        if !json {
            eprintln!(
                "{:<28} {:<12} {:>8} schedules  {:>6} ms  {}",
                outcome.name,
                mode,
                outcome.executions,
                wall_ms,
                if passed {
                    if spec.expect_failure {
                        "ok (race found)"
                    } else {
                        "ok"
                    }
                } else {
                    "FAILED"
                }
            );
            if !passed {
                if let Some(failure) = &outcome.failure {
                    eprintln!("{}", failure.render());
                } else if spec.expect_failure {
                    eprintln!(
                        "  expected the checker to find the planted race, \
                         but every schedule passed"
                    );
                }
            }
        }
        report.models.push(ModelRecord {
            name: outcome.name,
            mode,
            executions: outcome.executions,
            pruned: outcome.pruned,
            complete: outcome.complete,
            passed,
            wall_ms,
        });
    }

    if json {
        print!("{}", report.to_json());
    } else {
        eprintln!(
            "{}/{} models passed, {} interleavings explored (checker {})",
            report.models.iter().filter(|m| m.passed).count(),
            report.models.len(),
            report.total_executions(),
            if checker_enabled {
                "on"
            } else {
                "off (passthrough)"
            },
        );
    }
    if report.all_passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
