//! Micro-benchmarks of the `fhe-ckks` homomorphic operations — the
//! statistical counterpart of the `table3` harness (reduced degree so the
//! suite finishes quickly).
//!
//! Plain timing harness (the workspace builds offline, without criterion):
//! each op is warmed up, then timed over enough iterations to smooth
//! scheduler noise, reporting the per-iteration mean.

use std::time::Instant;

use fhe_ckks::{encrypt_symmetric, CkksContext, CkksParams, Evaluator, KeyGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn time_op(name: &str, level: usize, mut f: impl FnMut()) {
    const WARMUP: usize = 2;
    const ITERS: usize = 10;
    for _ in 0..WARMUP {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let per_iter = t0.elapsed().as_secs_f64() / ITERS as f64;
    println!("ckks_ops/{name}/{level}: {:.1} us/iter", per_iter * 1e6);
}

fn main() {
    let levels = 3usize;
    let ctx = CkksContext::new(CkksParams {
        poly_degree: 1 << 11,
        max_level: levels + 1,
        modulus_bits: 45,
        special_bits: 46,
        error_std: 3.2,
        threads: 1,
    });
    let mut rng = StdRng::seed_from_u64(1);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let sk = kg.secret_key();
    let relin = kg.relin_key(&mut rng);
    let galois = kg.galois_keys([1i64], &mut rng);
    let ev = Evaluator::new(&ctx, Some(relin), galois);
    let values: Vec<f64> = (0..ctx.slots()).map(|i| (i as f64 * 0.01).sin()).collect();

    for level in 1..=levels {
        let pt = ev.encoder().encode(&values, 2f64.powi(40), level);
        let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let ct2 = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let pt_up = ev.encoder().encode(&values, 2f64.powi(40), level + 1);
        let ct_up = encrypt_symmetric(&ctx, &sk, &pt_up, &mut rng);
        time_op("add", level, || {
            let _ = ev.add(&ct, &ct2);
        });
        time_op("mul_cipher", level, || {
            let _ = ev.mul(&ct, &ct2);
        });
        time_op("rotate", level, || {
            let _ = ev.rotate(&ct, 1);
        });
        time_op("rescale", level, || {
            let _ = ev.rescale(&ct_up);
        });
        time_op("modswitch", level, || {
            let _ = ev.mod_switch(&ct_up);
        });
    }
}
