//! The noise-budget domain: a per-value worst-case message-domain error
//! bound for scheduled programs.
//!
//! This is the abstract-interpretation generalization of
//! `fhe_runtime::error_est` (which now delegates here): every noisy
//! operation — fresh encryption, relinearization, rotation key switching,
//! rescale rounding — contributes `B / m` of message-domain error for a
//! ciphertext at scale `m`, and multiplication amplifies operand errors by
//! the operands' magnitudes. Magnitudes can be a single global `x_max`
//! (the original `error_est` behaviour) or per-value bounds from the
//! [`interval`](crate::interval) domain, which the fuzz oracle uses to get
//! a bound it then checks dominates every observed encrypted error.

use fhe_ir::{Op, ValueId};

use crate::domain::{AbstractDomain, AnalysisCx};

/// Where the `|x|` factors of the multiplication error rule come from.
#[derive(Debug, Clone)]
pub enum MagnitudeSource {
    /// One global bound `x_max` for every value (Table 1's assumption).
    Global(f64),
    /// A per-value magnitude bound, indexed by [`ValueId::index`] — e.g.
    /// `Interval::magnitude` of an interval analysis of the same program.
    PerValue(Vec<f64>),
}

impl MagnitudeSource {
    fn of(&self, id: ValueId) -> f64 {
        match self {
            MagnitudeSource::Global(m) => *m,
            MagnitudeSource::PerValue(v) => v[id.index()],
        }
    }
}

/// The noise domain. Abstract values are worst-case absolute errors in the
/// message domain (`0.0` for plaintext values, which are exact).
#[derive(Debug, Clone)]
pub struct NoiseDomain {
    /// log₂ of the per-operation noise magnitude `B` (the runtime's
    /// `NoiseModel::noise_bits`; 16 by default there).
    pub noise_bits: f64,
    /// Operand-magnitude bounds for the multiplication rule.
    pub magnitudes: MagnitudeSource,
}

impl NoiseDomain {
    /// Per-op message-domain noise `B / 2^scale` for ciphertext `id`.
    fn op_noise(&self, cx: &AnalysisCx<'_>, id: ValueId) -> f64 {
        let map = cx
            .scales
            .expect("noise domain requires a scheduled program's scale map");
        2f64.powf(self.noise_bits) / 2f64.powf(map.scale_bits(id).to_f64())
    }
}

impl AbstractDomain for NoiseDomain {
    type Value = f64;

    fn transfer(&self, cx: &AnalysisCx<'_>, id: ValueId, args: &[f64]) -> f64 {
        let p = cx.program;
        if p.is_plain(id) {
            return 0.0;
        }
        match p.op(id) {
            Op::Input { .. } => self.op_noise(cx, id),
            Op::Const { .. } => 0.0,
            Op::Add(..) | Op::Sub(..) => args[0] + args[1],
            Op::Mul(a, b) => {
                // |x·y − x̂·ŷ| ≤ |x|·e_y + |y|·e_x + e_x·e_y, plus
                // relinearization noise for cipher×cipher products.
                let (ma, mb) = (self.magnitudes.of(*a), self.magnitudes.of(*b));
                let base = ma * args[1] + mb * args[0] + args[0] * args[1];
                let relin = if p.is_cipher(*a) && p.is_cipher(*b) {
                    self.op_noise(cx, id)
                } else {
                    0.0
                };
                base + relin
            }
            Op::Neg(_) => args[0],
            Op::Rotate(..) | Op::Rescale(_) => args[0] + self.op_noise(cx, id),
            Op::ModSwitch(_) | Op::Upscale(..) => args[0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::analyze;
    use fhe_ir::{CompileParams, Frac, InputSpec, Op as IrOp, Program, ScheduledProgram};

    fn one_mul_schedule() -> ScheduledProgram {
        let mut p = Program::new("n", 4);
        let x = p.push(IrOp::Input { name: "x".into() });
        let y = p.push(IrOp::Input { name: "y".into() });
        let m = p.push(IrOp::Mul(x, y));
        p.set_outputs(vec![m]);
        let spec = InputSpec {
            scale_bits: Frac::from(40),
            level: 2,
        };
        ScheduledProgram {
            program: p,
            params: CompileParams::new(20),
            inputs: vec![spec, spec],
        }
    }

    #[test]
    fn per_value_magnitudes_tighten_the_global_bound() {
        let s = one_mul_schedule();
        let map = s.validate().unwrap();
        let cx = AnalysisCx::scheduled(&s.program, &map);
        let global = NoiseDomain {
            noise_bits: 16.0,
            magnitudes: MagnitudeSource::Global(1.0),
        };
        let tight = NoiseDomain {
            noise_bits: 16.0,
            magnitudes: MagnitudeSource::PerValue(vec![0.25, 0.25, 0.0625]),
        };
        let eg = analyze(&global, &cx);
        let et = analyze(&tight, &cx);
        let out = s.program.outputs()[0].index();
        assert!(et[out] < eg[out]);
        assert!(et[out] > 0.0);
    }

    #[test]
    fn plain_values_carry_zero_error() {
        let mut p = Program::new("pl", 4);
        let c = p.push(IrOp::Const { value: 2.0.into() });
        let d = p.push(IrOp::Const { value: 3.0.into() });
        let m = p.push(IrOp::Mul(c, d));
        p.set_outputs(vec![m]);
        let s = ScheduledProgram {
            program: p,
            params: CompileParams::new(20),
            inputs: vec![],
        };
        let map = s.validate().unwrap();
        let errs = analyze(
            &NoiseDomain {
                noise_bits: 16.0,
                magnitudes: MagnitudeSource::Global(1.0),
            },
            &AnalysisCx::scheduled(&s.program, &map),
        );
        assert_eq!(errs, vec![0.0, 0.0, 0.0]);
    }
}
