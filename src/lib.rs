//! # fhe-reserve — performance-aware scale analysis with reserve for RNS-CKKS
//!
//! A complete Rust reproduction of *"Performance-aware Scale Analysis with
//! Reserve for Homomorphic Encryption"* (Lee et al., ASPLOS 2024): an
//! exploration-free, performance-aware scale-management compiler for
//! RNS-CKKS FHE programs, together with everything needed to evaluate it —
//! an SSA IR, a from-scratch RNS-CKKS scheme, the EVA and Hecate baseline
//! compilers, executors, and the paper's eight ML benchmarks.
//!
//! This crate re-exports the workspace members:
//!
//! - [`ir`] (`fhe-ir`) — programs, the builder DSL, passes, validator, cost
//!   model;
//! - [`analysis`] (`fhe-analysis`) — abstract interpretation, the `F001`…
//!   `F005` lints, and translation validation (see also the `lint` binary);
//! - [`ckks`] (`fhe-ckks`) — the RNS-CKKS scheme;
//! - [`compiler`] (`reserve-core`) — **the paper's contribution**: reserve
//!   type system, backward reserve analysis, redistribution, rescale
//!   placement and hoisting;
//! - [`baselines`] (`fhe-baselines`) — EVA and Hecate;
//! - [`runtime`] (`fhe-runtime`) — plaintext/noise-sim/encrypted executors
//!   and latency estimation;
//! - [`workloads`] (`fhe-workloads`) — SF, HCD, LR, MR, PR, MLP, Lenet-5,
//!   Lenet-C;
//! - [`serve`] (`fhe-serve`) — the deployment front-end: compile cache,
//!   concurrent multi-session request scheduler, service telemetry.
//!
//! # Quickstart
//!
//! ```
//! use fhe_reserve::prelude::*;
//!
//! // 1. Write an FHE program with ordinary arithmetic.
//! let b = Builder::new("poly", 64);
//! let x = b.input("x");
//! let y = b.input("y");
//! let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
//! let program = b.finish(vec![q]);
//!
//! // 2. Compile: reserve analysis inserts all scale management.
//! let compiled = compile(&program, &Options::new(30))?;
//! assert!(compiled.scheduled.validate().is_ok());
//!
//! // 3. Run it (here on the noise simulator; `runtime::execute_encrypted`
//! //    runs the same schedule under real encryption).
//! let mut inputs = std::collections::HashMap::new();
//! inputs.insert("x".to_string(), vec![0.5; 64]);
//! inputs.insert("y".to_string(), vec![0.25; 64]);
//! let run = simulate(&compiled.scheduled, &inputs, &NoiseModel::default()).unwrap();
//! assert!(run.max_abs_error() < 1e-3);
//! # Ok::<(), fhe_reserve::compiler::CompileError>(())
//! ```

#![warn(missing_docs)]

pub use fhe_analysis as analysis;
pub use fhe_baselines as baselines;
pub use fhe_ckks as ckks;
pub use fhe_ir as ir;
pub use fhe_runtime as runtime;
pub use fhe_serve as serve;
pub use fhe_workloads as workloads;
pub use reserve_core as compiler;

pub mod lint;

/// The most common imports in one place.
pub mod prelude {
    pub use fhe_baselines::{EvaCompiler, HecateCompiler, HecateOptions};
    pub use fhe_ir::pipeline::{CompileReport, Compiled, PipelineTrace, ScaleCompiler};
    pub use fhe_ir::{Builder, CompileParams, CostModel, Expr, Frac, Program, ScheduledProgram};
    pub use fhe_runtime::{
        outputs_close, simulate, CkksExec, Execution, Executor, NoiseModel, NoiseSimExec, PlainExec,
    };
    pub use fhe_serve::{FheServer, Request, ServeError, ServerConfig};
    pub use fhe_workloads::{suite, Size, Workload};
    pub use reserve_core::{compile, Mode, Options, ReserveCompiler};
}
