//! Property-style tests of the RNS-CKKS scheme: homomorphism laws over
//! random data, round-trips, and noise growth sanity.
//!
//! The workspace builds offline (no proptest), so each property runs as a
//! deterministic seeded loop: every case is reproducible from its printed
//! case index.

use fhe_ckks::{
    decrypt, encrypt_public, encrypt_symmetric, CkksContext, CkksParams, Encoder, Evaluator,
    GaloisKeys, KeyGenerator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ctx() -> CkksContext {
    CkksContext::new(CkksParams {
        poly_degree: 128,
        max_level: 3,
        modulus_bits: 45,
        special_bits: 46,
        error_std: 3.2,
        threads: 1,
    })
}

fn random_values(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-4.0f64..4.0)).collect()
}

#[test]
fn encode_decode_roundtrip() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xE0DE ^ case);
        let values = random_values(&mut rng, 64);
        let level = rng.gen_range(1usize..3);
        let ctx = ctx();
        let enc = Encoder::new(&ctx);
        let pt = enc.encode(&values, 2f64.powi(30), level);
        let back = enc.decode(&pt);
        for (a, b) in back.iter().zip(&values) {
            assert!((a - b).abs() < 1e-6, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn homomorphic_add_mul() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xADD3 ^ case);
        let xs = random_values(&mut rng, 64);
        let ys = random_values(&mut rng, 64);
        let ctx = ctx();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let relin = kg.relin_key(&mut rng);
        let ev = Evaluator::new(&ctx, Some(relin), GaloisKeys::default());
        let scale = 2f64.powi(40);
        let ca = encrypt_symmetric(&ctx, &sk, &ev.encoder().encode(&xs, scale, 2), &mut rng);
        let cb = encrypt_symmetric(&ctx, &sk, &ev.encoder().encode(&ys, scale, 2), &mut rng);

        let sum = ev.encoder().decode(&decrypt(&ctx, &sk, &ev.add(&ca, &cb)));
        let prod = ev
            .encoder()
            .decode(&decrypt(&ctx, &sk, &ev.rescale(&ev.mul(&ca, &cb))));
        for i in 0..64 {
            assert!(
                (sum[i] - (xs[i] + ys[i])).abs() < 1e-3,
                "case {case}: add slot {i}"
            );
            assert!(
                (prod[i] - xs[i] * ys[i]).abs() < 1e-2,
                "case {case}: mul slot {i}: {} vs {}",
                prod[i],
                xs[i] * ys[i]
            );
        }
    }
}

#[test]
fn rotation_composes() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x207A7E ^ case);
        let xs = random_values(&mut rng, 64);
        let k1 = rng.gen_range(0i64..8);
        let k2 = rng.gen_range(0i64..8);
        let ctx = ctx();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let gk = kg.galois_keys([k1, k2, k1 + k2], &mut rng);
        let ev = Evaluator::new(&ctx, None, gk);
        let ca = encrypt_symmetric(
            &ctx,
            &sk,
            &ev.encoder().encode(&xs, 2f64.powi(35), 1),
            &mut rng,
        );
        // rotate(rotate(x, k1), k2) == rotate(x, k1 + k2)
        let double = ev.rotate(&ev.rotate(&ca, k1), k2);
        let single = ev.rotate(&ca, k1 + k2);
        let d = ev.encoder().decode(&decrypt(&ctx, &sk, &double));
        let s = ev.encoder().decode(&decrypt(&ctx, &sk, &single));
        for i in 0..16 {
            assert!(
                (d[i] - s[i]).abs() < 1e-1,
                "case {case}: slot {i}: {} vs {}",
                d[i],
                s[i]
            );
        }
    }
}

#[test]
fn public_and_symmetric_agree() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x9B ^ case);
        let xs = random_values(&mut rng, 32);
        let ctx = ctx();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let pk = kg.public_key(&mut rng);
        let enc = Encoder::new(&ctx);
        let pt = enc.encode(&xs, 2f64.powi(35), 1);
        let c_sym = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let c_pub = encrypt_public(&ctx, &pk, &pt, &mut rng);
        let d_sym = enc.decode(&decrypt(&ctx, &sk, &c_sym));
        let d_pub = enc.decode(&decrypt(&ctx, &sk, &c_pub));
        for i in 0..32 {
            assert!(
                (d_sym[i] - xs[i]).abs() < 1e-3,
                "case {case}: symmetric slot {i}"
            );
            assert!(
                (d_pub[i] - xs[i]).abs() < 1e-2,
                "case {case}: public slot {i}"
            );
        }
    }
}

#[test]
fn serialization_roundtrip_random() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x5E21 ^ case);
        let xs = random_values(&mut rng, 48);
        let ctx = ctx();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let enc = Encoder::new(&ctx);
        let pt = enc.encode(&xs, 2f64.powi(33), 2);
        let ct = encrypt_symmetric(&ctx, &sk, &pt, &mut rng);
        let blob = fhe_ckks::serialize::ciphertext_to_bytes(&ctx, &ct);
        let back = fhe_ckks::serialize::ciphertext_from_bytes(&ctx, &blob).unwrap();
        let d = enc.decode(&decrypt(&ctx, &sk, &back));
        for i in 0..48 {
            assert!((d[i] - xs[i]).abs() < 1e-3, "case {case}: slot {i}");
        }
    }
}

#[test]
fn barrett_and_shoup_agree_with_u128_reference() {
    use fhe_ckks::modular::Modulus;
    // Chain-prime sizes the backend actually uses, plus a modulus just
    // under the 2^62 headroom bound where Barrett/Shoup error terms are
    // tightest.
    let moduli = [
        fhe_ckks::primes::ntt_primes(45, 1 << 7, 1)[0],
        fhe_ckks::primes::ntt_primes(50, 1 << 12, 1)[0],
        fhe_ckks::primes::ntt_primes(60, 1 << 13, 1)[0],
        (1u64 << 62) - 57,
    ];
    for q in moduli {
        let m = Modulus::new(q);
        let mut rng = StdRng::seed_from_u64(0xBA2_2E77 ^ q);
        let boundary = [0u64, 1, 2, q / 2, q - 2, q - 1];
        // Boundary operands cross-paired, then 10k random pairs.
        let pairs = boundary
            .iter()
            .flat_map(|&a| boundary.iter().map(move |&b| (a, b)))
            .chain((0..10_000).map(|_| (rng.gen::<u64>() % q, rng.gen::<u64>() % q)));
        for (case, (a, b)) in pairs.enumerate() {
            let expect = m.mul_reference(a, b);
            assert_eq!(m.mul(a, b), expect, "q={q} case {case}: barrett {a}*{b}");
            let b_shoup = m.shoup(b);
            assert_eq!(
                m.mul_shoup(a, b, b_shoup),
                expect,
                "q={q} case {case}: shoup {a}*{b}"
            );
        }
    }
}

#[test]
fn harvey_ntt_matches_reference_all_degrees() {
    use fhe_ckks::modular::Modulus;
    use fhe_ckks::ntt::NttTable;
    for log_n in 4..=13u32 {
        let n = 1usize << log_n;
        let q = fhe_ckks::primes::ntt_primes(50, n, 1)[0];
        let m = Modulus::new(q);
        let t = NttTable::new(m, n);
        let mut rng = StdRng::seed_from_u64(0x4172 ^ u64::from(log_n));
        let orig: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q).collect();
        let mut fast = orig.clone();
        let mut reference = orig.clone();
        t.forward(&mut fast);
        t.forward_reference(&mut reference);
        assert_eq!(fast, reference, "forward n={n}");
        t.inverse(&mut fast);
        t.inverse_reference(&mut reference);
        assert_eq!(fast, reference, "inverse n={n}");
        assert_eq!(fast, orig, "roundtrip n={n}");
    }
}

/// Per-limb jobs are independent and deterministic, so the thread count
/// must not change a single bit of any ciphertext or decryption.
#[test]
fn thread_count_is_bit_exact() {
    let run = |threads: usize| -> (Vec<Vec<u8>>, Vec<f64>) {
        let ctx = CkksContext::new(CkksParams {
            poly_degree: 128,
            max_level: 3,
            modulus_bits: 45,
            special_bits: 46,
            error_std: 3.2,
            threads,
        });
        let mut rng = StdRng::seed_from_u64(0xDE7E_2817);
        let xs = random_values(&mut rng, 64);
        let ys = random_values(&mut rng, 64);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let relin = kg.relin_key(&mut rng);
        let gk = kg.galois_keys([1i64, 3], &mut rng);
        let ev = Evaluator::new(&ctx, Some(relin), gk);
        let scale = 2f64.powi(40);
        let ca = encrypt_symmetric(&ctx, &sk, &ev.encoder().encode(&xs, scale, 3), &mut rng);
        let cb = encrypt_symmetric(&ctx, &sk, &ev.encoder().encode(&ys, scale, 3), &mut rng);
        let prod = ev.rescale(&ev.mul(&ca, &cb));
        let rot = ev.rotate(&prod, 3);
        let hoisted = ev.rotate_hoisted(&prod, &[1, 3]);
        let blobs: Vec<Vec<u8>> = [&ca, &cb, &prod, &rot, &hoisted[0], &hoisted[1]]
            .iter()
            .map(|ct| fhe_ckks::serialize::ciphertext_to_bytes(&ctx, ct).to_vec())
            .collect();
        let decoded = ev.encoder().decode(&decrypt(&ctx, &sk, &rot));
        (blobs, decoded)
    };
    let (blobs_serial, dec_serial) = run(1);
    for threads in [2usize, 4] {
        let (blobs, dec) = run(threads);
        assert_eq!(blobs, blobs_serial, "ciphertext bytes, threads={threads}");
        // f64 equality is intentional: same bits in, same bits out.
        assert_eq!(dec, dec_serial, "decryption, threads={threads}");
    }
}

#[test]
fn modswitch_preserves_values() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x305 ^ case);
        let xs = random_values(&mut rng, 32);
        let ctx = ctx();
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let ev = Evaluator::new(&ctx, None, GaloisKeys::default());
        let ca = encrypt_symmetric(
            &ctx,
            &sk,
            &ev.encoder().encode(&xs, 2f64.powi(35), 3),
            &mut rng,
        );
        let dropped = ev.mod_switch(&ev.mod_switch(&ca));
        assert_eq!(dropped.level, 1, "case {case}");
        let d = ev.encoder().decode(&decrypt(&ctx, &sk, &dropped));
        for i in 0..32 {
            assert!((d[i] - xs[i]).abs() < 1e-3, "case {case}: slot {i}");
        }
    }
}
