//! Multi-session extension of the memory-stats reconstruction test: the
//! pool and Galois-key counters surfaced through [`ServeStats`] must
//! reconcile **exactly** with the per-request [`MemStats`] deltas in each
//! response.
//!
//! With one service worker, requests execute serially against the shared
//! per-degree pool, so summing the per-request deltas across *all*
//! sessions reconstructs the global pool counters; and each session's
//! lazy key cache is touched only by its own requests, so its counters
//! equal that session's summed per-request key traffic.

use std::collections::HashMap;

use fhe_ir::{text, CompileParams};
use fhe_runtime::{outputs_close, ExecOptions, KeyPolicy, MemStats, ParOptions};
use fhe_serve::{FheServer, Request, Response, ServerConfig};

const SLOTS: usize = 64;

/// Rotation-heavy program: distinct steps drive the lazy key cache, the
/// mul/rescale churn drives the pool.
fn rotsum_text() -> String {
    let b = fhe_ir::Builder::new("rotsum", SLOTS);
    let x = b.input("x");
    let y = b.input("y");
    let mut acc = x.clone() * y.clone();
    for k in [1i64, 2, 4] {
        acc = acc.rotate(k) + x.clone().rotate(-k) * y.clone();
    }
    text::print(&b.finish(vec![acc]))
}

fn inputs_for(s: usize, i: usize) -> HashMap<String, Vec<f64>> {
    let xs: Vec<f64> = (0..SLOTS)
        .map(|k| (((k + s + i) % 5) as f64 - 2.0) * 0.2)
        .collect();
    let ys: Vec<f64> = (0..SLOTS)
        .map(|k| (((k + 2 * s + 3 * i) % 3) as f64) * 0.3)
        .collect();
    [("x".to_string(), xs), ("y".to_string(), ys)]
        .into_iter()
        .collect()
}

#[test]
fn serve_stats_reconcile_with_per_request_trace_deltas() {
    const SESSIONS: usize = 3;
    const REQUESTS: usize = 3;

    // One service worker: requests serialize, so per-request deltas
    // against the shared pool partition the global counters exactly.
    let server = FheServer::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let text = rotsum_text();
    let sessions: Vec<_> = (0..SESSIONS)
        .map(|s| {
            server.create_session(ParOptions {
                exec: ExecOptions {
                    poly_degree: SLOTS * 2,
                    seed: 0x57A7_5000 + s as u64,
                    threads: 1,
                    keys: KeyPolicy::Lazy { budget_bytes: None },
                    ..ExecOptions::default()
                },
                workers: 1,
                fusion: true,
            })
        })
        .collect();

    let mut responses: Vec<Vec<Response>> = vec![Vec::new(); SESSIONS];
    for i in 0..REQUESTS {
        for (s, &session) in sessions.iter().enumerate() {
            let resp = server
                .call(Request {
                    session,
                    program: text.clone(),
                    params: CompileParams::new(30),
                    compiler: "reserve".into(),
                    inputs: inputs_for(s, i),
                    deadline: None,
                })
                .expect("request succeeds");
            outputs_close(&resp.outputs, &resp.reference, 1e-2).expect("accurate");
            responses[s].push(resp);
        }
    }

    let stats = server.stats();
    assert_eq!(stats.requests, (SESSIONS * REQUESTS) as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.pools.len(), 1, "all sessions share one degree");
    let pool = stats.pools[0].stats;

    let sum =
        |f: fn(&MemStats) -> u64| -> u64 { responses.iter().flatten().map(|r| f(&r.mem)).sum() };
    // Global pool counters == Σ per-request deltas, across all sessions.
    assert_eq!(sum(|m| m.pool_hits), pool.hits);
    assert_eq!(sum(|m| m.pool_misses), pool.misses);
    assert!(pool.hits > 0, "warm pool must recycle across requests");

    // Per-session: the ServeStats sums are exactly the per-request sums,
    // and the session's lazy key cache saw exactly its own key traffic.
    for (s, session_stats) in stats.sessions.iter().enumerate() {
        let per_request =
            |f: fn(&MemStats) -> u64| -> u64 { responses[s].iter().map(|r| f(&r.mem)).sum() };
        assert_eq!(session_stats.requests, REQUESTS as u64);
        assert_eq!(session_stats.pool_hits, per_request(|m| m.pool_hits));
        assert_eq!(session_stats.pool_misses, per_request(|m| m.pool_misses));
        assert_eq!(session_stats.key_hits, per_request(|m| m.key_hits));
        assert_eq!(session_stats.key_misses, per_request(|m| m.key_misses));
        assert_eq!(
            session_stats.key_evictions,
            per_request(|m| m.key_evictions)
        );
        assert_eq!(
            session_stats.peak_bytes,
            responses[s].iter().map(|r| r.mem.peak_bytes).max().unwrap()
        );

        let key_cache = session_stats
            .key_cache
            .as_ref()
            .expect("lazy policy exposes a key cache");
        assert_eq!(key_cache.hits, session_stats.key_hits, "session {s}");
        assert_eq!(key_cache.misses, session_stats.key_misses, "session {s}");
        assert_eq!(key_cache.evictions, session_stats.key_evictions);
        // 6 distinct rotation steps, generated once each on first use and
        // then served from the cache on the session's later requests.
        assert_eq!(key_cache.misses, 6, "session {s}");
        assert!(key_cache.hits >= 6 * (REQUESTS as u64 - 1), "session {s}");
    }

    // Compile-cache: one miss, everything else hits (same text + params +
    // compiler across all sessions).
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.hits, (SESSIONS * REQUESTS - 1) as u64);
    assert!(stats.peak_bytes() > 0);
}
