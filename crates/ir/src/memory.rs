//! Static memory estimation of scheduled programs.
//!
//! Mirrors the runtime's allocation discipline — pooled temporaries per
//! op, last-use freeing of dead ciphertexts, hoisted rotation groups —
//! and produces a peak-bytes bound that must dominate every measured
//! `ExecTrace` peak (the fuzz oracle asserts this). All polynomial
//! figures are counted in *limbs* (one limb = `N × 8` bytes) and
//! converted at the end; key material is counted from the closed forms
//! (`SecretKey`/`KswKey` byte sizes in `fhe-ckks`).

use std::collections::HashMap;

use crate::op::{Op, ValueId};
use crate::schedule::{ScaleMap, ScheduledProgram};

/// Flat per-op slack, in limbs, covering small transients the walk does
/// not model individually (automorphism double-buffers, rescale scratch).
const OP_MARGIN_LIMBS: u64 = 16;

/// Pipeline artifact configuring the static memory model (set by the
/// reserve compiler's working-set knob; defaults apply elsewhere).
#[derive(Debug, Clone, Copy)]
pub struct MemoryModelConfig {
    /// Whether the runtime may hoist rotation groups (shares one key-switch
    /// decomposition across rotations of the same ciphertext — faster, but
    /// the whole group's outputs are live at once).
    pub hoist_rotations: bool,
}

impl Default for MemoryModelConfig {
    fn default() -> Self {
        MemoryModelConfig {
            hoist_rotations: true,
        }
    }
}

/// Static per-program memory bound (see [`estimate_memory`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryEstimate {
    /// Total peak bytes: polynomial peak plus key material.
    pub peak_bytes: u64,
    /// Peak bytes held in ciphertext polynomials and pooled temporaries.
    pub poly_peak_bytes: u64,
    /// Bytes of key material: secret key, relinearization key, and one
    /// key-switching key per distinct Galois element the program rotates by.
    pub key_bytes: u64,
    /// Distinct Galois elements needing keys (rotations with
    /// `steps % slots != 0`, deduplicated).
    pub galois_keys: usize,
    /// The op at which the polynomial peak occurs, if any.
    pub peak_op: Option<ValueId>,
}

/// Computes a static peak-memory bound for a scheduled program.
///
/// The walk visits ops in schedule order, materializes each result into a
/// live set, adds a per-op transient bound for the pooled temporaries the
/// backend checks out (key-switch digit decompositions dominate), records
/// the high-water mark, and frees each ciphertext after its last use —
/// exactly the discipline of the encrypted executor. `poly_degree` is the
/// backend's `N` (the runtime requires `N = 2 × slots`); `hoist_rotations`
/// must match the execution-side setting, since hoisting a rotation group
/// makes every member's output live at the first member.
pub fn estimate_memory(
    scheduled: &ScheduledProgram,
    map: &ScaleMap,
    poly_degree: usize,
    hoist_rotations: bool,
) -> MemoryEstimate {
    let program = &scheduled.program;
    let live = crate::analysis::live(program);
    let limb_bytes = (poly_degree * 8) as u64;

    // Last schedule position at which each value is consumed; outputs are
    // pinned (never freed).
    let mut last_use: Vec<usize> = vec![0; program.num_ops()];
    for id in program.ids() {
        if !live[id.index()] {
            continue;
        }
        for a in program.op(id).operands() {
            last_use[a.index()] = id.index();
        }
    }
    for &o in program.outputs() {
        last_use[o.index()] = usize::MAX;
    }

    // Rotation groups the runtime hoists: ≥2 live cipher rotations of one
    // source share a decomposition, and all outputs materialize when the
    // first member executes.
    let mut groups: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
    if hoist_rotations {
        for id in program.ids() {
            if let Op::Rotate(a, _) = program.op(id) {
                if live[id.index()] && program.is_cipher(id) {
                    groups.entry(*a).or_default().push(id);
                }
            }
        }
        groups.retain(|_, g| g.len() >= 2);
    }
    let mut pending: Vec<bool> = vec![false; program.num_ops()];

    let mut live_limbs: u64 = 0;
    let mut poly_peak: u64 = 0;
    let mut peak_op = None;
    for id in program.ids() {
        if !live[id.index()] || !program.is_cipher(id) {
            continue;
        }
        let l = u64::from(map.level(id));
        // Per-op pooled transients, in limbs, over-approximating the
        // backend: a relinearizing multiply or key-switched rotation holds
        // the lifted digit decomposition (`l` digits × `l+1` limbs), two
        // special-basis accumulators, and two scratch polynomials at once.
        let ksw = l * (l + 1) + 2 * (l + 1) + 2 * l;
        let (result_limbs, transient) = match program.op(id) {
            _ if pending[id.index()] => (0, 0),
            Op::Mul(a, b) if program.is_cipher(*a) && program.is_cipher(*b) => (2 * l, ksw),
            Op::Rotate(a, _) => match groups.get(a) {
                Some(group) => {
                    // First member: every group output materializes now,
                    // and the shared + permuted decompositions coexist.
                    for &m in group {
                        if m != id {
                            pending[m.index()] = true;
                        }
                    }
                    let outputs: u64 = group.iter().map(|&m| 2 * u64::from(map.level(m))).sum();
                    (outputs, 2 * l * (l + 1) + 2 * (l + 1) + l)
                }
                None => (2 * l, ksw),
            },
            Op::Rescale(_) | Op::ModSwitch(_) => (2 * l, 4),
            // Input (encrypt), add/sub/neg, plain mul, upscale: one pooled
            // (or adopted) result, no key switch.
            _ => (2 * l, 0),
        };
        live_limbs += result_limbs;
        let op_peak = live_limbs + transient + OP_MARGIN_LIMBS;
        if op_peak > poly_peak {
            poly_peak = op_peak;
            peak_op = Some(id);
        }
        let mut prev = None;
        for a in program.op(id).operands() {
            if prev == Some(a) {
                continue; // squares consume one ciphertext twice
            }
            prev = Some(a);
            if program.is_cipher(a) && live[a.index()] && last_use[a.index()] == id.index() {
                live_limbs -= 2 * u64::from(map.level(a));
            }
        }
    }

    // Key material: rotations by a multiple of the slot count are the
    // identity automorphism and need no key; everything else needs one
    // key-switching key per distinct Galois element. The count covers all
    // scheduled rotations (not just live ones) so it also bounds an eager
    // whole-program keygen.
    let slots = program.slots() as i64;
    let mut elements: Vec<i64> = program
        .ops()
        .iter()
        .filter_map(|op| match op {
            Op::Rotate(_, k) if k.rem_euclid(slots) != 0 => Some(k.rem_euclid(slots)),
            _ => None,
        })
        .collect();
    elements.sort_unstable();
    elements.dedup();
    let galois_keys = elements.len();

    let big_l = u64::from(map.max_level());
    let sk_bytes = (big_l + 1) * limb_bytes;
    let one_key = 2 * big_l * (big_l + 1) * limb_bytes;
    let key_bytes = sk_bytes + one_key + galois_keys as u64 * one_key;
    let poly_peak_bytes = poly_peak * limb_bytes;
    MemoryEstimate {
        peak_bytes: poly_peak_bytes + key_bytes,
        poly_peak_bytes,
        key_bytes,
        galois_keys,
        peak_op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::params::CompileParams;

    fn scheduled(p: crate::program::Program) -> ScheduledProgram {
        ScheduledProgram {
            params: CompileParams::new(30),
            inputs: p
                .inputs()
                .iter()
                .map(|_| crate::schedule::InputSpec {
                    scale_bits: crate::frac::Frac::from(30u32),
                    level: 1,
                })
                .collect(),
            program: p,
        }
    }

    #[test]
    fn keys_counted_once_per_distinct_element() {
        let b = Builder::new("t", 8);
        let x = b.input("x");
        // Steps 1, 9 (≡1 mod 8), 2, and 0 → two distinct elements.
        let e = x.clone().rotate(1) + x.clone().rotate(9) + x.clone().rotate(2) + x.rotate(0);
        let p = b.finish(vec![e]);
        let s = scheduled(p);
        let map = s.validate().expect("valid");
        let est = estimate_memory(&s, &map, 16, true);
        assert_eq!(est.galois_keys, 2);
        assert!(est.key_bytes > 0);
        assert_eq!(est.peak_bytes, est.poly_peak_bytes + est.key_bytes);
    }

    #[test]
    fn peak_grows_with_live_width_and_shrinks_with_freeing() {
        // A chain (each value dies immediately) must peak lower than a
        // fan-out that keeps every intermediate alive for a final sum.
        let chain = {
            let b = Builder::new("chain", 8);
            let mut x = b.input("x");
            for _ in 0..6 {
                x = x.clone() + x;
            }
            b.finish(vec![x])
        };
        let fan = {
            let b = Builder::new("fan", 8);
            let x = b.input("x");
            let parts: Vec<_> = (0..6).map(|_| x.clone() + x.clone()).collect();
            let sum = parts.into_iter().reduce(|a, c| a + c).expect("nonempty");
            b.finish(vec![sum])
        };
        let sc = scheduled(chain);
        let sf = scheduled(fan);
        let mc = sc.validate().expect("valid");
        let mf = sf.validate().expect("valid");
        let pc = estimate_memory(&sc, &mc, 16, true).poly_peak_bytes;
        let pf = estimate_memory(&sf, &mf, 16, true).poly_peak_bytes;
        assert!(
            pf > pc,
            "fan-out peak {pf} must exceed freeing chain peak {pc}"
        );
    }

    #[test]
    fn hoisting_raises_the_static_peak() {
        let build = || {
            let b = Builder::new("rots", 8);
            let x = b.input("x");
            let e = x.clone().rotate(1) + x.clone().rotate(2) + x.clone().rotate(3) + x.rotate(4);
            b.finish(vec![e])
        };
        let s = scheduled(build());
        let map = s.validate().expect("valid");
        let hoisted = estimate_memory(&s, &map, 16, true);
        let compact = estimate_memory(&s, &map, 16, false);
        assert!(
            hoisted.poly_peak_bytes > compact.poly_peak_bytes,
            "hoisted {} vs compact {}",
            hoisted.poly_peak_bytes,
            compact.poly_peak_bytes
        );
        // Key bytes are policy-independent.
        assert_eq!(hoisted.key_bytes, compact.key_bytes);
    }
}
