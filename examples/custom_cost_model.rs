//! Calibrating the compiler's cost model from real backend measurements.
//!
//! The compilers ship with the paper's Table 3 latencies; this example
//! measures this machine's `fhe-ckks` latencies instead, rebuilds the cost
//! model from them, and shows how the calibrated model changes (or
//! confirms) the reserve compiler's plan.
//!
//! ```sh
//! cargo run --example custom_cost_model --release
//! ```

use fhe_reserve::prelude::*;
use fhe_reserve::{ckks, runtime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Measure the real backend (small degree for a fast demo).
    let params = ckks::CkksParams {
        poly_degree: 1 << 11,
        max_level: 5,
        modulus_bits: 45,
        special_bits: 46,
        error_std: 3.2,
        threads: 1,
    };
    println!("measuring backend op latencies (N = 2^11, levels 1-4)...");
    let rows = runtime::microbench::measure(params, 4, 2, 1);
    for (class, lat) in &rows {
        let cells: Vec<String> = lat.iter().map(|v| format!("{v:>8.0}")).collect();
        println!("  {:<20} {} us", class.name(), cells.join(" "));
    }

    // 2. Build a calibrated cost model.
    let calibrated = CostModel::from_rows(rows);

    // 3. Compile a workload under both models and compare the plans.
    let program = fhe_reserve::workloads::image::sobel(16);
    let paper_opts = Options::new(25);
    let mut calibrated_opts = Options::new(25);
    calibrated_opts.cost_model = calibrated.clone();

    let with_paper = fhe_reserve::compiler::compile(&program, &paper_opts)?;
    let with_measured = fhe_reserve::compiler::compile(&program, &calibrated_opts)?;

    let paper_est = |s: &ScheduledProgram| {
        runtime::estimate(s, &CostModel::paper_table3())
            .unwrap()
            .total_us
            / 1000.0
    };
    let measured_est =
        |s: &ScheduledProgram| runtime::estimate(s, &calibrated).unwrap().total_us / 1000.0;

    println!(
        "\nplan under paper cost model:      {} ops, {} hoists",
        with_paper.report.ops_after, with_paper.report.hoists
    );
    println!(
        "plan under calibrated cost model: {} ops, {} hoists",
        with_measured.report.ops_after, with_measured.report.hoists
    );
    println!(
        "\nestimated latency (paper model):      {:.1} ms vs {:.1} ms",
        paper_est(&with_paper.scheduled),
        paper_est(&with_measured.scheduled)
    );
    println!(
        "estimated latency (calibrated model): {:.1} ms vs {:.1} ms",
        measured_est(&with_paper.scheduled),
        measured_est(&with_measured.scheduled)
    );
    println!("\n(the calibrated-model plan should never be worse under its own model)");
    assert!(measured_est(&with_measured.scheduled) <= measured_est(&with_paper.scheduled) * 1.05);
    Ok(())
}
