//! Criterion benchmarks of the three compilers' scale-management passes on
//! the small benchmarks — the statistical counterpart of `table4`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fhe_baselines::{ForwardPlan, HecateOptions};
use fhe_ir::CompileParams;
use fhe_workloads::{suite, Size};

fn bench_compilers(c: &mut Criterion) {
    let workloads = suite(Size::Test);
    let params = CompileParams::new(30);
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    for w in workloads.iter().filter(|w| ["SF", "HCD", "LR", "MLP"].contains(&w.name)) {
        group.bench_with_input(BenchmarkId::new("eva", w.name), &w.program, |b, p| {
            b.iter(|| fhe_baselines::eva::compile(p, &params).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("reserve", w.name), &w.program, |b, p| {
            b.iter(|| reserve_core::compile(p, &reserve_core::Options::new(30)).unwrap())
        });
        let hopts = HecateOptions {
            max_iterations: 50,
            patience: 50,
            seed: 1,
            max_choice: ForwardPlan::MAX_CHOICE,
        };
        group.bench_with_input(BenchmarkId::new("hecate50", w.name), &w.program, |b, p| {
            b.iter(|| fhe_baselines::hecate::compile(p, &params, &hopts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compilers);
criterion_main!(benches);
