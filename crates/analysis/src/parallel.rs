//! Parallel-safety proof: any topological-order-respecting parallel
//! execution of a scheduled program is race-free.
//!
//! The runtime (PR 5) frees a ciphertext's pooled buffer at its last use
//! and recycles buffers through a pool; a DAG-parallel executor (the
//! ROADMAP's work-stealing item) must therefore prove, per schedule, that
//! executing ops in *any* order compatible with the dependence DAG cannot
//! read a freed buffer or leave two writers of one pooled buffer
//! unordered. [`check`] is that proof, in the translation-validation
//! style: it re-derives the hazards from the program text — independently
//! of how `fhe_ir::depgraph` inserted its anti/output edges — and verifies
//! the DAG orders every one of them:
//!
//! 1. **read-before-free** — for every live cipher value `v` with free op
//!    `f` (its last live use; outputs are pinned and never freed), every
//!    other reader of `v` must be a strict ancestor of `f` in the DAG, so
//!    `v`'s buffer cannot be recycled while a reader is in flight.
//! 2. **ordered group writers** — members of a hoisted rotation group all
//!    write buffers materialized at the group leader's execution, so every
//!    member must be a descendant of the leader.
//!
//! Writers that share a pooled buffer through recycling (free → checkout)
//! need no per-pair proof: the pool hands a buffer out only after its
//! previous holder freed it, and by (1) that free happens after the last
//! read, so pool synchronization orders the writers. What remains — and
//! what [`check`] verifies — is exactly (1) and (2).
//!
//! A schedule that fails (for instance a DAG built from true dependences
//! only, via [`fhe_ir::DepGraph::build_true_deps`]) yields one
//! [`Violation`] per unordered hazard; `DepGraphPass` surfaces those as
//! `F008` findings, since an unordered read/free pair is the parallel form
//! of the premature-free lint.

use fhe_ir::depgraph::DepGraph;
use fhe_ir::{Op, ScheduledProgram, ValueId};

/// One unordered hazard: a pair of ops the DAG fails to order although the
/// freeing/pooling discipline requires it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `reader` reads `value`, but is not an ancestor of the op that frees
    /// it — a parallel schedule could recycle the buffer mid-read.
    ReadAfterFree {
        /// The ciphertext whose buffer is at stake.
        value: ValueId,
        /// The unordered reader.
        reader: ValueId,
        /// The op whose completion frees `value`.
        free_op: ValueId,
    },
    /// A hoisted rotation-group member is not ordered after its leader,
    /// leaving two writers of the group's buffers unordered.
    UnorderedGroupWriter {
        /// The group leader (first member, which materializes all outputs).
        leader: ValueId,
        /// The unordered member.
        member: ValueId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ReadAfterFree {
                value,
                reader,
                free_op,
            } => write!(
                f,
                "reader {reader} of {value} is not ordered before its free at {free_op}"
            ),
            Violation::UnorderedGroupWriter { leader, member } => write!(
                f,
                "hoisted rotation {member} is not ordered after its group leader {leader}"
            ),
        }
    }
}

/// Result of a parallel-safety check: the proof obligations discharged and
/// any that failed.
#[derive(Debug, Clone, Default)]
pub struct SafetyReport {
    /// Ciphertext values with a free point whose readers were checked.
    pub freed_values: usize,
    /// Reader/free and group-writer orderings verified.
    pub obligations: usize,
    /// Unordered hazards (empty = the schedule is proven race-free under
    /// any topological-order-respecting parallel execution).
    pub violations: Vec<Violation>,
}

impl SafetyReport {
    /// Whether every obligation was discharged.
    pub fn race_free(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Ancestor sets over the DAG as bitsets: `anc[i]` holds `j` iff node `j`
/// is a strict ancestor of node `i`. Nodes are in topological order by
/// construction, so one forward sweep suffices.
fn ancestors(graph: &DepGraph) -> Vec<Vec<u64>> {
    let n = graph.nodes().len();
    let words = n.div_ceil(64);
    let mut anc = vec![vec![0u64; words]; n];
    for i in 0..n {
        let mut row = vec![0u64; words];
        for &(p, _) in graph.preds(i) {
            row[p / 64] |= 1 << (p % 64);
            for (w, &bits) in anc[p].iter().enumerate() {
                row[w] |= bits;
            }
        }
        anc[i] = row;
    }
    anc
}

/// Proves `scheduled` race-free under `graph` (normally
/// [`DepGraph::build`] over the same schedule; pass a true-deps-only graph
/// to see the hazards the anti/output edges repair). `hoist_rotations`
/// must match the runtime setting: it decides whether group-writer
/// obligations exist at all.
pub fn check(
    scheduled: &ScheduledProgram,
    graph: &DepGraph,
    hoist_rotations: bool,
) -> SafetyReport {
    let program = &scheduled.program;
    let anc = ancestors(graph);
    let is_anc = |a: usize, d: usize| anc[d][a / 64] & (1 << (a % 64)) != 0;

    let mut report = SafetyReport::default();

    // Obligation 1: every reader of a freed ciphertext precedes the free.
    for id in program.ids() {
        if !program.is_cipher(id) || graph.node(id).is_none() {
            continue;
        }
        let Some(free_op) = graph.free_at(id) else {
            continue; // pinned output, or never read
        };
        report.freed_values += 1;
        let free_node = graph.node(free_op).expect("freeing op is live");
        for reader in program.ids() {
            let Some(reader_node) = graph.node(reader) else {
                continue;
            };
            if reader == free_op || !program.op(reader).operands().any(|a| a == id) {
                continue;
            }
            report.obligations += 1;
            if !is_anc(reader_node, free_node) {
                report.violations.push(Violation::ReadAfterFree {
                    value: id,
                    reader,
                    free_op,
                });
            }
        }
    }

    // Obligation 2: hoisted rotation-group members follow their leader.
    // Re-derive the groups from the program text (≥ 2 live cipher
    // rotations of one source), mirroring the memory model.
    let mut groups: std::collections::HashMap<ValueId, Vec<ValueId>> =
        std::collections::HashMap::new();
    for id in program.ids() {
        if graph.node(id).is_none() || !program.is_cipher(id) {
            continue;
        }
        if let Op::Rotate(a, _) = program.op(id) {
            groups.entry(*a).or_default().push(id);
        }
    }
    if hoist_rotations {
        for group in groups.values() {
            if group.len() < 2 {
                continue;
            }
            let leader = group[0];
            let leader_node = graph.node(leader).expect("leader is live");
            for &member in &group[1..] {
                let member_node = graph.node(member).expect("member is live");
                report.obligations += 1;
                if !is_anc(leader_node, member_node) {
                    report
                        .violations
                        .push(Violation::UnorderedGroupWriter { leader, member });
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::{Builder, CompileParams, CostModel, Frac, InputSpec, Program};

    fn scheduled(p: Program) -> ScheduledProgram {
        ScheduledProgram {
            params: CompileParams::new(30),
            inputs: p
                .inputs()
                .iter()
                .map(|_| InputSpec {
                    scale_bits: Frac::from(30u32),
                    level: 1,
                })
                .collect(),
            program: p,
        }
    }

    fn wide_program() -> Program {
        let b = Builder::new("wide", 8);
        let x = b.input("x");
        let y = b.input("y");
        // x has several readers; its last use frees it. Rotations of y form
        // a hoist group.
        let e = (x.clone() + y.clone())
            + (x.clone() - y.clone())
            + (x.clone() + x)
            + y.clone().rotate(1)
            + y.rotate(2);
        b.finish(vec![e])
    }

    #[test]
    fn full_dag_is_proven_race_free() {
        let s = scheduled(wide_program());
        let map = s.validate().expect("valid");
        let g = DepGraph::build(&s, &map, &CostModel::paper_table3(), true);
        let report = check(&s, &g, true);
        assert!(report.race_free(), "{:?}", report.violations);
        assert!(report.freed_values > 0);
        assert!(report.obligations > 0);
    }

    #[test]
    fn true_deps_only_dag_exhibits_the_races() {
        let s = scheduled(wide_program());
        let map = s.validate().expect("valid");
        let g = DepGraph::build_true_deps(&s, &map, &CostModel::paper_table3());
        let report = check(&s, &g, true);
        assert!(!report.race_free());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReadAfterFree { .. })));
    }

    #[test]
    fn violations_render_the_ops_involved() {
        let s = scheduled(wide_program());
        let map = s.validate().expect("valid");
        let g = DepGraph::build_true_deps(&s, &map, &CostModel::paper_table3());
        let report = check(&s, &g, true);
        let text = report.violations[0].to_string();
        assert!(text.contains("free"), "{text}");
    }
}
