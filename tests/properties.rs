//! Property-style tests: random programs through the whole toolchain.
//!
//! For arbitrary DAG programs, every compiler must emit a schedule that
//! (a) passes the RNS-CKKS validator, (b) computes exactly the same
//! function as the source, and (c) respects the reserve type system; and
//! the core IR utilities (text format, passes, rationals) must uphold
//! their invariants.
//!
//! The workspace builds offline (no proptest), so each property runs as a
//! deterministic seeded loop: every case is reproducible from its printed
//! case index.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fhe_ir::{Frac, Op, Program, ValueId};
use fhe_reserve::prelude::*;
use fhe_reserve::{baselines, runtime};

/// A recipe for one random op over already-defined values.
#[derive(Debug, Clone)]
enum OpRecipe {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Neg(usize),
    Rotate(usize, i64),
    Const(f64),
}

fn random_recipe(rng: &mut StdRng) -> OpRecipe {
    match rng.gen_range(0usize..6) {
        0 => OpRecipe::Add(
            rng.gen_range(0usize..1 << 16),
            rng.gen_range(0usize..1 << 16),
        ),
        1 => OpRecipe::Sub(
            rng.gen_range(0usize..1 << 16),
            rng.gen_range(0usize..1 << 16),
        ),
        2 => OpRecipe::Mul(
            rng.gen_range(0usize..1 << 16),
            rng.gen_range(0usize..1 << 16),
        ),
        3 => OpRecipe::Neg(rng.gen_range(0usize..1 << 16)),
        4 => OpRecipe::Rotate(rng.gen_range(0usize..1 << 16), rng.gen_range(-4i64..4)),
        _ => OpRecipe::Const(rng.gen_range(-100i64..100) as f64 / 100.0),
    }
}

fn random_recipes(rng: &mut StdRng, max_len: usize) -> Vec<OpRecipe> {
    let len = rng.gen_range(1usize..max_len);
    (0..len).map(|_| random_recipe(rng)).collect()
}

/// Materializes a random program with bounded multiplicative depth (so it
/// always fits `max_level`), plus matching inputs.
fn build_program(recipes: &[OpRecipe], num_inputs: usize) -> (Program, HashMap<String, Vec<f64>>) {
    const SLOTS: usize = 8;
    const MAX_DEPTH: u32 = 6;
    let mut p = Program::new("random", SLOTS);
    let mut depth: Vec<u32> = Vec::new(); // muls consumed so far per value
    for i in 0..num_inputs {
        p.push(Op::Input {
            name: format!("in{i}"),
        });
        depth.push(0);
    }
    for r in recipes {
        let n = p.num_ops();
        let pick = |raw: usize| ValueId((raw % n) as u32);
        let (op, d) = match r.clone() {
            OpRecipe::Add(a, b) => {
                let (a, b) = (pick(a), pick(b));
                (Op::Add(a, b), depth[a.index()].max(depth[b.index()]))
            }
            OpRecipe::Sub(a, b) => {
                let (a, b) = (pick(a), pick(b));
                (Op::Sub(a, b), depth[a.index()].max(depth[b.index()]))
            }
            OpRecipe::Mul(a, b) => {
                let (a, b) = (pick(a), pick(b));
                let d = depth[a.index()].max(depth[b.index()]) + 1;
                if d > MAX_DEPTH {
                    // Too deep: degrade to an addition to bound the level.
                    (Op::Add(a, b), d - 1)
                } else {
                    (Op::Mul(a, b), d)
                }
            }
            OpRecipe::Neg(a) => {
                let a = pick(a);
                (Op::Neg(a), depth[a.index()])
            }
            OpRecipe::Rotate(a, k) => {
                let a = pick(a);
                (Op::Rotate(a, k), depth[a.index()])
            }
            OpRecipe::Const(v) => (Op::Const { value: v.into() }, 0),
        };
        p.push(op);
        depth.push(d);
    }
    // Output: the last ciphertext value (guaranteed: inputs are cipher).
    let out = p
        .ids()
        .rev()
        .find(|&id| p.is_cipher(id))
        .expect("at least one cipher value");
    p.set_outputs(vec![out]);
    let inputs = (0..num_inputs)
        .map(|i| {
            (
                format!("in{i}"),
                (0..SLOTS)
                    .map(|s| ((s + i) as f64 * 0.11).sin() * 0.5)
                    .collect(),
            )
        })
        .collect();
    (p, inputs)
}

fn outputs_equal(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.iter()
                .zip(y)
                .all(|(u, v)| (u - v).abs() <= 1e-9 * v.abs().max(1.0))
        })
}

#[test]
fn reserve_compiler_is_sound_on_random_programs() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x5E5EED ^ case);
        let recipes = random_recipes(&mut rng, 40);
        let num_inputs = rng.gen_range(1usize..4);
        let waterline = rng.gen_range(15u32..50);
        let mode = Mode::ALL[rng.gen_range(0usize..3)];
        let (program, inputs) = build_program(&recipes, num_inputs);
        let compiled = compile(&program, &Options::with_mode(waterline, mode))
            .expect("bounded-depth programs always compile");
        // (a) validator accepts.
        assert!(
            compiled.scheduled.validate().is_ok(),
            "case {case}: validator rejected"
        );
        // (b) semantics preserved exactly.
        let reference = runtime::plain::execute(&program, &inputs);
        let got = runtime::plain::execute(&compiled.scheduled.program, &inputs);
        assert!(
            outputs_equal(&got, &reference),
            "case {case}: outputs diverged"
        );
    }
}

#[test]
fn baselines_are_sound_on_random_programs() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xBA5E ^ case);
        let recipes = random_recipes(&mut rng, 30);
        let num_inputs = rng.gen_range(1usize..3);
        let waterline = rng.gen_range(15u32..50);
        let (program, inputs) = build_program(&recipes, num_inputs);
        let params = CompileParams::new(waterline);
        let reference = runtime::plain::execute(&program, &inputs);

        let eva = baselines::eva::compile(&program, &params).expect("EVA compiles");
        assert!(
            eva.scheduled.validate().is_ok(),
            "case {case}: EVA validator rejected"
        );
        assert!(
            outputs_equal(
                &runtime::plain::execute(&eva.scheduled.program, &inputs),
                &reference
            ),
            "case {case}: EVA outputs diverged"
        );

        let hec = baselines::hecate::compile(
            &program,
            &params,
            &baselines::HecateOptions {
                max_iterations: 20,
                patience: 20,
                seed: 9,
                max_choice: baselines::ForwardPlan::MAX_CHOICE,
            },
        )
        .expect("Hecate compiles");
        assert!(
            hec.scheduled.validate().is_ok(),
            "case {case}: Hecate validator rejected"
        );
        assert!(
            outputs_equal(
                &runtime::plain::execute(&hec.scheduled.program, &inputs),
                &reference
            ),
            "case {case}: Hecate outputs diverged"
        );
    }
}

#[test]
fn reserve_solutions_type_check() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x7CEC ^ case);
        let recipes = random_recipes(&mut rng, 40);
        let waterline = rng.gen_range(15u32..50);
        let redistribute = rng.gen_range(0u8..2) == 1;
        let (program, _) = build_program(&recipes, 2);
        let program = fhe_ir::passes::cleanup(&program);
        let params = CompileParams::new(waterline);
        let order =
            fhe_reserve::compiler::allocation_order(&program, &params, &CostModel::paper_table3());
        let sol = fhe_reserve::compiler::allocate(&program, &params, &order, redistribute);
        let errors = fhe_reserve::compiler::types::check(&program, &params, &sol);
        assert!(errors.is_empty(), "case {case}: type errors: {errors:?}");
    }
}

#[test]
fn text_roundtrip_on_random_programs() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x7E27 ^ case);
        let recipes = random_recipes(&mut rng, 30);
        let (program, _) = build_program(&recipes, 2);
        let text = fhe_ir::text::print(&program);
        let back = fhe_ir::text::parse(&text).expect("printer output parses");
        assert_eq!(
            fhe_ir::text::print(&back),
            text,
            "case {case}: roundtrip changed text"
        );
    }
}

#[test]
fn cleanup_preserves_semantics() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xC1EA ^ case);
        let recipes = random_recipes(&mut rng, 40);
        let (program, inputs) = build_program(&recipes, 2);
        let cleaned = fhe_ir::passes::cleanup(&program);
        assert!(
            cleaned.num_ops() <= program.num_ops(),
            "case {case}: cleanup grew the program"
        );
        let reference = runtime::plain::execute(&program, &inputs);
        let got = runtime::plain::execute(&cleaned, &inputs);
        assert!(
            outputs_equal(&got, &reference),
            "case {case}: cleanup changed semantics"
        );
    }
}

#[test]
fn frac_field_laws() {
    for case in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0xF2AC ^ case);
        let mut frac = || {
            let n = rng.gen_range(-1000i64..1000);
            let d = rng.gen_range(1i64..60);
            Frac::ratio(n as i128, d as i128)
        };
        let (a, b, c) = (frac(), frac(), frac());
        assert_eq!(a + b, b + a, "case {case}");
        assert_eq!((a + b) + c, a + (b + c), "case {case}");
        assert_eq!(a * (b + c), a * b + a * c, "case {case}");
        assert_eq!(a - a, Frac::ZERO, "case {case}");
        // Ceiling and the paper's fractional part are consistent:
        // x = ⌈x⌉ − 1 + {x}.
        assert_eq!(
            Frac::from(a.ceil()) - Frac::from(1) + a.paper_frac(),
            a,
            "case {case}"
        );
        // {x} ∈ (0, 1].
        assert!(
            a.paper_frac() > Frac::ZERO && a.paper_frac() <= Frac::from(1),
            "case {case}: paper_frac out of range"
        );
    }
}

#[test]
fn reserve_is_invariant_under_rescale_in_schedules() {
    // For every rescale in a compiled schedule, the reserve
    // (level·R − scale) of input and output is identical — the paper's
    // central invariant.
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x2E5C ^ case);
        let recipes = random_recipes(&mut rng, 30);
        let waterline = rng.gen_range(15u32..50);
        let (program, _) = build_program(&recipes, 2);
        let compiled = compile(&program, &Options::new(waterline)).unwrap();
        let map = compiled.scheduled.validate().unwrap();
        let sp = &compiled.scheduled.program;
        let r = Frac::from(compiled.scheduled.params.rescale_bits);
        for id in sp.ids() {
            if let Op::Rescale(src) = sp.op(id) {
                let res_in = Frac::from(map.level(*src)) * r - map.scale_bits(*src);
                let res_out = Frac::from(map.level(id)) * r - map.scale_bits(id);
                assert_eq!(
                    res_in, res_out,
                    "case {case}: rescale at {id} changed reserve"
                );
            }
        }
    }
}
