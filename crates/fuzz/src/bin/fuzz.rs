//! Differential fuzzing CLI.
//!
//! ```text
//! fuzz --seed 1 --count 1000 --json fuzz.json
//! ```
//!
//! Runs seeds `S..S+N`, each through every compiler and executor (the
//! encrypted backend on every `--ckks-every`-th seed). Any divergence is
//! shrunk to a minimal reproducer and written into `--shrunk-dir`; the
//! process exits non-zero if any seed diverged.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use fhe_bench::json::Json;
use fhe_fuzz::{check_program, corpus, generate, shrink, GenConfig, OpMix, OracleConfig};
use fhe_ir::CompileParams;

struct Args {
    seed: u64,
    count: u64,
    gen_cfg: GenConfig,
    oracle_cfg: OracleConfig,
    ckks_every: u64,
    json: Option<PathBuf>,
    shrunk_dir: PathBuf,
    no_shrink: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--seed S] [--count N] [--opmix k=w,…] [--json PATH]
            [--ckks-every K] [--no-ckks] [--waterline BITS] [--max-ops N]
            [--slots N] [--width-stress N] [--hecate-iters N] [--ablations]
            [--shrunk-dir DIR] [--no-shrink] [--quiet]

Generates N seeded programs and cross-checks Reserve/EVA/Hecate schedules
under the plain, noise-sim and encrypted executors. Divergences are shrunk
to minimal reproducers in DIR (default fuzz-failures/)."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        count: 100,
        gen_cfg: GenConfig::default(),
        oracle_cfg: OracleConfig::default(),
        ckks_every: 1,
        json: None,
        shrunk_dir: PathBuf::from("fuzz-failures"),
        no_shrink: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => args.seed = parse_or_usage(&value(&mut it, "--seed")),
            "--count" => args.count = parse_or_usage(&value(&mut it, "--count")),
            "--opmix" => {
                args.gen_cfg.opmix = OpMix::parse(&value(&mut it, "--opmix")).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--json" => args.json = Some(PathBuf::from(value(&mut it, "--json"))),
            "--ckks-every" => args.ckks_every = parse_or_usage(&value(&mut it, "--ckks-every")),
            "--no-ckks" => args.oracle_cfg.run_ckks = false,
            "--waterline" => {
                let bits: u32 = parse_or_usage(&value(&mut it, "--waterline"));
                let mut params = CompileParams::new(bits);
                params.max_level = args.oracle_cfg.params.max_level;
                args.oracle_cfg.params = params;
            }
            "--max-ops" => args.gen_cfg.max_ops = parse_or_usage(&value(&mut it, "--max-ops")),
            "--slots" => args.gen_cfg.slots = parse_or_usage(&value(&mut it, "--slots")),
            "--width-stress" => {
                args.gen_cfg.width_stress = parse_or_usage(&value(&mut it, "--width-stress"))
            }
            "--hecate-iters" => {
                args.oracle_cfg.hecate_iterations =
                    parse_or_usage(&value(&mut it, "--hecate-iters"))
            }
            "--ablations" => args.oracle_cfg.include_ablations = true,
            "--shrunk-dir" => args.shrunk_dir = PathBuf::from(value(&mut it, "--shrunk-dir")),
            "--no-shrink" => args.no_shrink = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.gen_cfg.min_ops > args.gen_cfg.max_ops {
        args.gen_cfg.min_ops = args.gen_cfg.max_ops;
    }
    args
}

fn parse_or_usage<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric value `{s}`");
        usage()
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    // Panics in compilers/executors are findings the oracle catches;
    // suppress the default hook's backtrace spam.
    std::panic::set_hook(Box::new(|_| {}));

    let t0 = Instant::now();
    let mut programs = 0u64;
    let mut ops_total = 0usize;
    let mut ckks_runs = 0u64;
    let mut findings: Vec<Json> = Vec::new();
    let mut divergent_seeds = 0u64;

    for seed in args.seed..args.seed + args.count {
        let mut cfg = args.oracle_cfg.clone();
        cfg.run_ckks =
            args.oracle_cfg.run_ckks && (seed - args.seed).is_multiple_of(args.ckks_every.max(1));
        if cfg.run_ckks {
            ckks_runs += 1;
        }
        let program = generate(seed, &args.gen_cfg);
        programs += 1;
        ops_total += program.num_ops();
        let divergences = check_program(&program, &cfg);
        if divergences.is_empty() {
            continue;
        }
        divergent_seeds += 1;
        eprintln!("seed {seed}: {} divergence(s)", divergences.len());
        for d in &divergences {
            eprintln!("  {d}");
        }
        let first = &divergences[0];
        let label = first.label();
        let reproducer = if args.no_shrink {
            program.clone()
        } else {
            shrink(&program, &label, &|p| check_program(p, &cfg))
        };
        let stem = format!("seed_{seed}_{}", label.replace([':', '~', '/'], "_"));
        match corpus::write_case(
            &args.shrunk_dir,
            &stem,
            &reproducer,
            &cfg.params,
            &label,
            &first.detail,
        ) {
            Ok(path) => eprintln!("  shrunk reproducer: {}", path.display()),
            Err(e) => eprintln!("  failed to write reproducer: {e}"),
        }
        findings.push(Json::obj([
            ("seed", Json::from(seed as f64)),
            ("label", Json::from(label.as_str())),
            ("detail", Json::from(first.detail.as_str())),
            ("divergences", Json::from(divergences.len())),
            ("shrunk_ops", Json::from(reproducer.num_ops())),
        ]));
    }

    let elapsed = t0.elapsed().as_secs_f64();
    if !args.quiet {
        println!(
            "fuzz: {programs} programs ({ops_total} ops) in {elapsed:.1}s, \
             {ckks_runs} encrypted runs, {divergent_seeds} divergent seed(s)"
        );
    }
    if let Some(path) = &args.json {
        let report = Json::obj([
            ("seed", Json::from(args.seed as f64)),
            ("count", Json::from(args.count as f64)),
            ("programs", Json::from(programs as f64)),
            ("ops", Json::from(ops_total)),
            ("ckks_runs", Json::from(ckks_runs as f64)),
            ("divergent_seeds", Json::from(divergent_seeds as f64)),
            ("elapsed_s", Json::from(elapsed)),
            (
                "waterline_bits",
                Json::from(args.oracle_cfg.params.waterline_bits),
            ),
            ("findings", Json::Array(findings)),
        ]);
        if let Err(e) = std::fs::write(path, format!("{report}\n")) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !args.quiet {
            println!("wrote {}", path.display());
        }
    }
    if divergent_seeds > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
