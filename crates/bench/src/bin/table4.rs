//! Table 4: compile time and scale-management time of EVA, Hecate and this
//! work on the eight benchmarks (speedups over Hecate).
//!
//! `--fast` runs reduced benchmark sizes and exploration budgets;
//! `--json <path>` writes every compile report including per-pass traces.

use fhe_bench::{
    compile_all, diagnostics_cell, fmt_ms, geomean, hecate_budget, json::Json, print_table,
    report_json, standard_compilers, CliArgs,
};

fn main() {
    let args = CliArgs::parse();
    let waterline = 30;
    let suite = fhe_bench::selected_suite(&args);

    println!("Table 4: Compile time of EVA, Hecate, and this work (W = 2^{waterline}).\n");
    let headers = [
        "Benchmark",
        "# Ops",
        "# Iters",
        "EVA (ms)",
        "Hecate (ms)",
        "This work (ms)",
        "Speedup",
        "EVA SM (ms)",
        "Hecate SM (ms)",
        "This work SM (ms)",
        "SM Speedup",
        "CP (us)",
        "Width",
        "Lint/TV (EVA|Hec|ours)",
    ];
    let mut rows = Vec::new();
    let mut total_speedups = Vec::new();
    let mut sm_speedups = Vec::new();
    let mut json_rows = Vec::new();
    for w in &suite {
        eprintln!("compiling {} ({} ops)...", w.name, w.program.num_ops());
        let budget = hecate_budget(&args, w.program.num_ops());
        let outs = compile_all(&standard_compilers(budget), &w.program, waterline);
        // By standard_compilers convention: EVA first, this work last.
        let (eva, hec, ours) = (&outs[0].report, &outs[1].report, &outs[2].report);
        let speedup = hec.total_time.as_secs_f64() / ours.total_time.as_secs_f64();
        let sm_speedup =
            hec.scale_management_time.as_secs_f64() / ours.scale_management_time.as_secs_f64();
        total_speedups.push(speedup);
        sm_speedups.push(sm_speedup);
        rows.push(vec![
            w.name.to_string(),
            w.program.num_ops().to_string(),
            hec.iterations.to_string(),
            fmt_ms(eva.total_time),
            fmt_ms(hec.total_time),
            fmt_ms(ours.total_time),
            format!("{speedup:.2}x"),
            fmt_ms(eva.scale_management_time),
            fmt_ms(hec.scale_management_time),
            fmt_ms(ours.scale_management_time),
            format!("{sm_speedup:.0}x"),
            format!("{:.0}", ours.parallelism.span_us),
            ours.parallelism.max_width.to_string(),
            format!(
                "{} | {} | {}",
                diagnostics_cell(eva),
                diagnostics_cell(hec),
                diagnostics_cell(ours)
            ),
        ]);
        json_rows.push(Json::obj([
            ("benchmark", Json::from(w.name)),
            ("ops", Json::from(w.program.num_ops())),
            ("critical_path_us", Json::from(ours.parallelism.span_us)),
            ("max_width", Json::from(ours.parallelism.max_width)),
            (
                "reports",
                Json::Array(outs.iter().map(|o| report_json(&o.report)).collect()),
            ),
        ]));
    }
    print_table(&headers, &rows);
    let geo_total = geomean(&total_speedups);
    let geo_sm = geomean(&sm_speedups);
    println!(
        "\ngeomean speedup over Hecate: total compile {geo_total:.2}x, scale management {geo_sm:.0}x"
    );
    println!("(paper: 24.44x total, 15526x scale management — with 14763-iteration budgets)");
    args.emit_json(&Json::obj([
        ("table", Json::from("table4")),
        ("waterline", Json::from(waterline)),
        ("geomean_total_speedup", Json::from(geo_total)),
        ("geomean_sm_speedup", Json::from(geo_sm)),
        ("rows", Json::Array(json_rows)),
    ]));
}
