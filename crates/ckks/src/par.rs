//! Persistent work-stealing pool for limb- and op-level fan-out.
//!
//! RNS limbs never interact inside an NTT conversion, a pointwise product,
//! a rescale correction, or a key-switch decomposition, so those loops
//! parallelize as independent jobs (the same dependency-free pattern as
//! the fig6 waterline sweep — no external crates). Earlier revisions
//! spawned fresh `std::thread::scope` workers per call; the per-call spawn
//! overhead (~17µs, visible in the `BENCH_kernels.json` fanout rows as a
//! 0.96× "speedup") made small fan-outs *slower* than the serial loop.
//! Jobs now run on a process-wide persistent [`Pool`]: workers park on a
//! condvar, keep per-worker deques, and steal from their siblings, so
//! dispatching a batch costs a queue push and a wake instead of a spawn —
//! and batches whose estimated work falls below [`PARALLEL_CUTOFF_NS`]
//! stay inline, which fixes the small-size regression outright.
//!
//! Every job is deterministic and writes only its own item, so results
//! are bit-identical for any thread count; [`crate::CkksParams::threads`]
//! `= 1` always takes the plain serial loop.

//! The pool's park/wake and batch-drain protocols are model-checked: all
//! sync primitives come from the [`fhe_conc::sync`] facade (plain std
//! re-exports in ordinary builds, controlled-scheduler shims under
//! `--cfg fhe_conc`), and `tests/conc_models.rs` re-derives the scan→park
//! lost-wakeup race this design closes (see the `conc_model` module,
//! compiled only in checker builds).

use std::collections::VecDeque;

use fhe_conc::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use fhe_conc::sync::{thread, Arc, Condvar, Mutex, OnceLock};

#[cfg(debug_assertions)]
use fhe_conc::sync::atomic::AtomicU64;

/// Batches estimated to finish faster than this stay serial. Waking a
/// parked worker costs a few microseconds of queue push + condvar signal,
/// so splitting work below ~4× that merely moves time from compute to
/// handoff. Calibrated from the `BENCH_kernels.json` fanout rows, where
/// per-call scoped spawns lost ~17µs on a ~400µs batch; the persistent
/// pool's dispatch is roughly an order of magnitude cheaper.
pub(crate) const PARALLEL_CUTOFF_NS: u64 = 16_000;

/// Per-coefficient cost hints (nanoseconds) kernel call sites use to size
/// their batches against [`PARALLEL_CUTOFF_NS`]. These only steer the
/// serial cutoff — a wrong hint costs throughput, never correctness.
pub(crate) mod cost {
    /// Forward/inverse NTT over a limb: `O(N log N)` butterflies.
    pub(crate) const NTT: u64 = 10;
    /// Pointwise modular passes over a limb (mul, mul-accumulate).
    pub(crate) const POINTWISE: u64 = 2;
}

/// One submitted fan-out: a shared job closure plus claim/finish state.
///
/// Workers that pop a copy of the batch claim job indices from `cursor`
/// until it is exhausted; the final finisher flips `done` and signals the
/// submitter. Stale copies popped after exhaustion claim an out-of-range
/// index and return without ever touching `f`.
struct Batch {
    /// Type-erased borrow of the submitter's job closure. Dereferenced
    /// only for claimed indices `< jobs`; [`Batch::wait`] keeps the
    /// submitting frame (and thus the borrow) alive until every claimed
    /// job has completed.
    f: *const (dyn Fn(usize) + Sync),
    jobs: usize,
    cursor: AtomicUsize,
    completed: AtomicUsize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    cv: Condvar,
    /// Debug-build liveness stamp: `u64::MAX` while the submitting `run`
    /// frame is alive, overwritten with a retirement generation once
    /// `run` returns. Any job that claims an in-range index after that
    /// point would dereference a dangling `f`, so `work` asserts on it.
    #[cfg(debug_assertions)]
    retired_at: AtomicU64,
}

// SAFETY: `f` is only read under the liveness protocol in the field docs;
// the remaining state is atomics and locks.
unsafe impl Send for Batch {}
// SAFETY: shared access is the same protocol as above — `f` is read-only
// behind the liveness guarantee, everything else is atomics and locks.
unsafe impl Sync for Batch {}

impl Batch {
    /// Claims and runs jobs until the cursor is exhausted. Called by the
    /// submitting thread and by every worker that pops this batch.
    fn work(&self) {
        loop {
            let j = self.cursor.fetch_add(1, Ordering::Relaxed);
            if j >= self.jobs {
                return;
            }
            #[cfg(debug_assertions)]
            {
                let retired = self.retired_at.load(Ordering::Acquire);
                assert_eq!(
                    retired,
                    u64::MAX,
                    "pool batch claimed job {j} after its run() frame retired it \
                     at generation {retired}: the borrow behind `f` is dead"
                );
            }
            // SAFETY: `j < jobs` implies the submitter is still blocked in
            // `wait`, so the closure behind `f` is alive.
            let f = unsafe { &*self.f };
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(j))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            if self.completed.fetch_add(1, Ordering::Release) + 1 == self.jobs {
                *self.done.lock().expect("batch lock") = true;
                self.cv.notify_all();
            }
        }
    }

    /// Blocks the submitter until every job has completed, then
    /// propagates any job panic.
    fn wait(&self) {
        if self.completed.load(Ordering::Acquire) != self.jobs {
            let mut done = self.done.lock().expect("batch lock");
            while !*done {
                done = self.cv.wait(done).expect("batch lock");
            }
        }
        if self.panicked.load(Ordering::Acquire) {
            panic!("a pool job panicked");
        }
    }
}

struct Shared {
    /// One deque per worker; submissions round-robin across them and idle
    /// workers steal oldest-first from their siblings.
    queues: Vec<Mutex<VecDeque<Arc<Batch>>>>,
    /// Bumped on every submission. Workers snapshot it before scanning
    /// the deques and park only while it is unchanged, which closes the
    /// scan→park window — a submission between scan and park flips the
    /// version and the worker rescans instead of sleeping.
    version: Mutex<u64>,
    cv: Condvar,
    rr: AtomicUsize,
    shutdown: AtomicBool,
    /// Debug-build monotone count of retired batches; stamps
    /// [`Batch::retired_at`] when a `run` frame exits.
    #[cfg(debug_assertions)]
    retire_gen: AtomicU64,
}

impl Shared {
    /// Pops from the worker's own deque (newest first — depth-first on
    /// nested batches), then steals from siblings (oldest first).
    fn find_task(&self, me: usize) -> Option<Arc<Batch>> {
        let w = self.queues.len();
        if let Some(t) = self.queues[me].lock().expect("queue lock").pop_back() {
            return Some(t);
        }
        for i in 1..w {
            let q = (me + i) % w;
            if let Some(t) = self.queues[q].lock().expect("queue lock").pop_front() {
                return Some(t);
            }
        }
        None
    }

    /// Distributes `copies` references to the batch across the deques and
    /// wakes the workers.
    fn push(&self, batch: &Arc<Batch>, copies: usize) {
        for _ in 0..copies {
            let q = self.rr.fetch_add(1, Ordering::Relaxed) % self.queues.len();
            self.queues[q]
                .lock()
                .expect("queue lock")
                .push_back(Arc::clone(batch));
        }
        *self.version.lock().expect("version lock") += 1;
        self.cv.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    loop {
        let seen = *shared.version.lock().expect("version lock");
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = shared.find_task(me) {
            task.work();
            continue;
        }
        let mut v = shared.version.lock().expect("version lock");
        while *v == seen && !shared.shutdown.load(Ordering::Acquire) {
            v = shared.cv.wait(v).expect("version lock");
        }
    }
}

/// A persistent work-stealing thread pool (see [`Pool::global`] for the
/// process-wide instance every evaluator shares).
///
/// Submission is batch-oriented: [`Pool::run`] shares one job closure
/// across `jobs` indices, lets parked workers steal shares, and has the
/// calling thread participate in its own batch. Nested `run` calls from
/// inside a job therefore always make progress even when every worker is
/// busy — which is what lets the op-level DAG executor and the per-limb
/// kernel fan-out coexist on the same pool without a reserved-thread
/// split.
pub struct Pool {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers())
            .finish()
    }
}

impl Pool {
    /// Spawns a pool with `workers` parked worker threads. The calling
    /// thread joins each batch it submits, so peak concurrency per batch
    /// is `workers + 1`.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            version: Mutex::new(0),
            cv: Condvar::new(),
            rr: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            #[cfg(debug_assertions)]
            retire_gen: AtomicU64::new(0),
        });
        for me in 0..workers {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("fhe-pool-{me}"))
                .spawn(move || worker_loop(shared, me))
                .expect("spawn pool worker");
        }
        Pool { shared }
    }

    /// The process-wide pool, spawned on first use and sized to the
    /// machine's available parallelism.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Pool::new(std::thread::available_parallelism().map_or(1, |n| n.get())))
    }

    /// Number of worker threads (excluding submitting callers).
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Runs `f(j)` for every `j` in `0..jobs`, fanning jobs across at most
    /// `max_concurrency` threads (the caller plus worker shares) and
    /// blocking until all jobs finish. A panic inside any job is
    /// propagated to the caller after the batch drains.
    pub fn run(&self, jobs: usize, max_concurrency: usize, f: &(dyn Fn(usize) + Sync)) {
        if jobs == 0 {
            return;
        }
        let helpers = jobs
            .saturating_sub(1)
            .min(max_concurrency.saturating_sub(1))
            .min(self.workers());
        if helpers == 0 {
            for j in 0..jobs {
                f(j);
            }
            return;
        }
        // SAFETY: lifetime erasure — the batch stores a raw borrow of `f`.
        // `Batch::work` dereferences it only for claimed indices, and
        // `wait` below does not return until every claimed index has
        // completed, so no dereference outlives this frame. Stale batch
        // copies popped later observe an exhausted cursor and never touch
        // `f`.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let batch = Arc::new(Batch {
            f: f_static,
            jobs,
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            done: Mutex::new(false),
            cv: Condvar::new(),
            #[cfg(debug_assertions)]
            retired_at: AtomicU64::new(u64::MAX),
        });
        self.shared.push(&batch, helpers);
        batch.work();
        batch.wait();
        // Retire the batch before `f`'s borrow ends: any straggler copy
        // that still claims an in-range index past this point trips the
        // assertion in `work` instead of dereferencing a dangling closure.
        #[cfg(debug_assertions)]
        batch.retired_at.store(
            self.shared.retire_gen.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Release,
        );
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        *self.shared.version.lock().expect("version lock") += 1;
        self.shared.cv.notify_all();
    }
}

/// Shares a `&mut` slice base pointer across pool jobs; every job touches
/// only its own index, so the aliasing is disjoint by construction.
struct SlicePtr<T>(*mut T);

// SAFETY: jobs dereference disjoint indices of a live `&mut [T]`.
unsafe impl<T: Send> Sync for SlicePtr<T> {}

thread_local! {
    /// Per-thread scratch reused across every job this thread runs (see
    /// [`for_each_with_scratch`]).
    static SCRATCH: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f(index, &mut items[index])` for every item on the global pool,
/// capped at `threads`-way concurrency. `est_item_ns` is the caller's
/// per-item cost hint (see [`cost`]); batches whose estimated total falls
/// below [`PARALLEL_CUTOFF_NS`] run inline on the calling thread.
pub(crate) fn for_each<T, F>(threads: usize, est_item_ns: u64, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 || est_item_ns.saturating_mul(n as u64) < PARALLEL_CUTOFF_NS {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let base = SlicePtr(items.as_mut_ptr());
    let base = &base;
    Pool::global().run(n, threads, &|j| {
        // SAFETY: `j < n`, and the batch hands each index to exactly one
        // job, so this `&mut` is unaliased.
        let item = unsafe { &mut *base.0.add(j) };
        f(j, item);
    });
}

/// Like [`for_each`], but each job additionally borrows a scratch buffer
/// reused across every job its thread processes — rescale and key-switch
/// corrections need one `N`-length temporary per limb, and the
/// thread-local cache caps allocations at one per thread for the life of
/// the process instead of one per limb.
pub(crate) fn for_each_with_scratch<T, F>(threads: usize, est_item_ns: u64, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T, &mut Vec<u64>) + Sync,
{
    for_each(threads, est_item_ns, items, |i, item| {
        let mut scratch = SCRATCH.with(|s| s.take());
        f(i, item, &mut scratch);
        SCRATCH.with(|s| *s.borrow_mut() = scratch);
    });
}

/// Parallel `(0..count).map(f).collect()` over the pool, preserving index
/// order. Used for the per-limb key-switch decomposition, where each job
/// builds an owned polynomial.
pub(crate) fn map_range<T, F>(threads: usize, est_item_ns: u64, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for_each(threads, est_item_ns, &mut slots, |i, slot| {
        *slot = Some(f(i))
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Miniature re-derivations of the pool's park/wake protocol for the
/// `fhe-conc` model checker (checker builds only). These distill the
/// worker loop in [`worker_loop`] down to its synchronization skeleton so
/// the exhaustive scheduler can cover every interleaving in milliseconds:
/// one worker, one submitter, one queued item.
///
/// The *unversioned* variant reproduces the bug the version stamp exists
/// to close (the PR 7 scan→park race): the worker scans the queue, finds
/// nothing, and only then parks — so a push landing in that gap signals a
/// condvar nobody is waiting on yet, and the worker sleeps forever. The
/// *versioned* variant is the shipped protocol: the worker snapshots the
/// submission version before scanning and re-checks it under the lock
/// before parking, so the late push flips the version and the park is
/// skipped.
#[cfg(fhe_conc)]
#[doc(hidden)]
pub mod conc_model {
    use std::collections::VecDeque;

    use fhe_conc::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use fhe_conc::sync::{thread, Arc, Condvar, Mutex};

    struct MiniShared {
        queue: Mutex<VecDeque<u32>>,
        version: Mutex<u64>,
        cv: Condvar,
        shutdown: AtomicBool,
        processed: AtomicUsize,
        done: Mutex<bool>,
        done_cv: Condvar,
    }

    fn mini_worker(s: &MiniShared, versioned: bool) {
        loop {
            let seen = *s.version.lock().expect("version lock");
            if let Some(_item) = s.queue.lock().expect("queue lock").pop_front() {
                if s.processed.fetch_add(1, Ordering::SeqCst) + 1 == 1 {
                    *s.done.lock().expect("done lock") = true;
                    s.done_cv.notify_all();
                }
                continue;
            }
            if s.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let mut v = s.version.lock().expect("version lock");
            if versioned {
                // Shipped protocol: park only while no submission has
                // landed since the scan above.
                while *v == seen && !s.shutdown.load(Ordering::SeqCst) {
                    v = s.cv.wait(v).expect("version lock");
                }
            } else if !s.shutdown.load(Ordering::SeqCst) {
                // BUG (pre-fix PR 7 variant): parks without re-checking
                // the version, so a push between the scan and this wait
                // already fired its notify into the void.
                let _v = s.cv.wait(v).expect("version lock");
            }
        }
    }

    /// One submitter pushes one item and waits for it to be processed,
    /// then shuts the worker down. Under the checker, `versioned = false`
    /// must deadlock (lost wakeup) in some interleaving and
    /// `versioned = true` must pass exhaustively.
    pub fn park_model(versioned: bool) {
        let s = Arc::new(MiniShared {
            queue: Mutex::new(VecDeque::new()),
            version: Mutex::new(0),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            processed: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let s2 = Arc::clone(&s);
        let worker = thread::spawn(move || mini_worker(&s2, versioned));

        // Submit: queue first, then version bump + wake (same order as
        // `Shared::push`).
        s.queue.lock().expect("queue lock").push_back(7);
        *s.version.lock().expect("version lock") += 1;
        s.cv.notify_all();

        // Wait for the item to drain (proper wait loop — the submitter
        // side is not the protocol under test).
        let mut done = s.done.lock().expect("done lock");
        while !*done {
            done = s.done_cv.wait(done).expect("done lock");
        }
        drop(done);

        s.shutdown.store(true, Ordering::SeqCst);
        *s.version.lock().expect("version lock") += 1;
        s.cv.notify_all();
        worker.join().expect("worker joins");
        assert_eq!(s.processed.load(Ordering::SeqCst), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Large enough to clear the serial cutoff for any non-trivial batch.
    const HEAVY: u64 = 10_000_000;

    #[test]
    fn serial_and_parallel_agree() {
        for threads in [1usize, 2, 3, 8, 64] {
            let mut items: Vec<u64> = (0..17).collect();
            for_each(threads, HEAVY, &mut items, |i, x| *x = *x * 3 + i as u64);
            let expect: Vec<u64> = (0..17).map(|i| i * 3 + i).collect();
            assert_eq!(items, expect, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_variant_agrees_and_reuses() {
        for threads in [1usize, 4] {
            let mut items: Vec<u64> = (0..9).collect();
            for_each_with_scratch(threads, HEAVY, &mut items, |i, x, scratch| {
                scratch.clear();
                scratch.extend((0..=i as u64).map(|k| k + *x));
                *x = scratch.iter().sum();
            });
            let expect: Vec<u64> = (0..9u64).map(|i| (0..=i).map(|k| k + i).sum()).collect();
            assert_eq!(items, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_range_preserves_order() {
        for threads in [1usize, 3] {
            let out = map_range(threads, HEAVY, 13, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn small_batches_stay_on_the_calling_thread() {
        let me = std::thread::current().id();
        let mut seen = vec![None; 8];
        for_each(8, 1, &mut seen, |_, slot| {
            *slot = Some(std::thread::current().id())
        });
        assert!(
            seen.iter().all(|t| *t == Some(me)),
            "sub-cutoff batches must not be dispatched to the pool"
        );
    }

    #[test]
    fn pool_runs_every_job_exactly_once() {
        let pool = Pool::new(3);
        let counts: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, 8, &|j| {
            counts[j].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_batches_make_progress_without_deadlock() {
        let pool = Pool::new(2);
        let total = AtomicUsize::new(0);
        pool.run(4, 4, &|_| {
            pool.run(4, 4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn job_panics_propagate_to_the_submitter() {
        let pool = Pool::new(1);
        let hit = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4, 4, &|j| {
                hit.fetch_add(1, Ordering::Relaxed);
                assert!(j != 2, "boom");
            });
        }));
        assert!(result.is_err(), "the job panic must reach the caller");
        assert_eq!(hit.load(Ordering::Relaxed), 4, "the batch still drains");
    }

    #[test]
    fn zero_and_single_job_batches_run_inline() {
        let pool = Pool::new(2);
        pool.run(0, 4, &|_| panic!("no jobs to run"));
        let me = std::thread::current().id();
        let ran_on = Mutex::new(None);
        pool.run(1, 4, &|_| {
            *ran_on.lock().unwrap() = Some(std::thread::current().id())
        });
        assert_eq!(*ran_on.lock().unwrap(), Some(me));
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Pool::new(2);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    pool.run(16, 4, &|_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }
}
