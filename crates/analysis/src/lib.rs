//! # fhe-analysis — abstract interpretation, lints, and translation
//! validation for RNS-CKKS programs
//!
//! The paper's central soundness hypothesis (Table 1) is `m · x_max < Q`:
//! the message magnitude times the encoding scale must fit the coefficient
//! modulus. The differential fuzzer *samples* this; the analyses here
//! *prove* it per program — exploration-free, like the reserve compiler
//! itself. The crate provides:
//!
//! - a tiny abstract-interpretation framework over the SSA DAG
//!   ([`AbstractDomain`], [`analyze`]) — programs are DAGs, so one forward
//!   sweep in topological order is a complete fixpoint;
//! - pluggable domains: slot-magnitude [`interval`]s (proving
//!   `m·x_max < Q` statically or pinpointing the op where overflow becomes
//!   possible), scale/level/reserve tracking via the validator's
//!   [`ScaleMap`](fhe_ir::ScaleMap), and a [`noise`] budget domain
//!   generalizing `fhe_runtime::error_est`;
//! - a [`lint`] engine walking domain results into rustc-style diagnostics
//!   (`F001 possible-overflow` … `F005 over-provisioned-modulus`) rendered
//!   with carets into the textual IR by [`render`];
//! - a [`tv`] (translation validation) pass proving a compiler's
//!   [`ScheduledProgram`](fhe_ir::ScheduledProgram) equals its source
//!   [`Program`](fhe_ir::Program) modulo inserted scale-management ops,
//!   by structural bisimulation over the DAG; and
//! - a [`parallel`]-safety checker proving — over the dependence DAG of
//!   `fhe_ir::depgraph` — that any topological-order-respecting parallel
//!   execution is race-free under the runtime's last-use freeing and pool
//!   recycling; and
//! - [`passes`] plugging all of it into the `fhe_ir::pipeline` so every
//!   compiler's [`CompileReport`](fhe_ir::CompileReport) carries findings,
//!   a TV verdict, and a parallelism profile.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod domain;
pub mod interval;
pub mod lint;
pub mod noise;
pub mod parallel;
pub mod passes;
pub mod render;
pub mod tv;

pub use domain::{analyze, AbstractDomain, AnalysisCx};
pub use interval::{Interval, IntervalDomain};
pub use lint::{explain, lint_scheduled, registry, LintInfo, LintOptions};
pub use noise::{MagnitudeSource, NoiseDomain};
pub use parallel::{SafetyReport, Violation};
pub use passes::{DepGraphPass, LintPass, TranslationValidatePass};
pub use render::{render_finding, render_parse_error, SourceMap};
pub use tv::{validate, TvMismatch, TvReport};
