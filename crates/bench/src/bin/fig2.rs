//! Fig. 2: the worked example `x³ · (y² + y)` at waterline 2^20 — EVA's
//! conservative plan vs the reserve analysis (step 1) vs reserve analysis +
//! rescale hoisting (step 2). Costs in hundreds of µs, as in the figure.

use fhe_bench::{print_table, run_eva, run_hecate, run_reserve};
use fhe_ir::Builder;
use reserve_core::Mode;

fn main() {
    let b = Builder::new("fig2a", 8);
    let x = b.input("x");
    let y = b.input("y");
    let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
    let program = b.finish(vec![q]);

    println!("Fig. 2: scale management plans for x^3 * (y^2 + y), W = 2^20, R = 2^60.\n");
    let eva = run_eva(&program, 20);
    let ra = run_reserve(&program, 20, Mode::Ra);
    let full = run_reserve(&program, 20, Mode::Full);
    let hec = run_hecate(&program, 20, 2000);

    let headers = ["Plan", "Cost (x100us)", "Paper", "Rescales", "Upscales", "Modswitches"];
    let rows: Vec<Vec<String>> = [
        ("EVA (Fig. 2b)", &eva, "390"),
        ("Reserve analysis (Fig. 2c)", &ra, "353"),
        ("+ rescale hoisting (Fig. 2d)", &full, "335"),
        ("Hecate (exploration)", &hec, "-"),
    ]
    .iter()
    .map(|(name, rec, paper)| {
        let (rs, ms, us) = rec.scheduled.scale_management_counts();
        vec![
            name.to_string(),
            format!("{:.1}", rec.latency_us / 100.0),
            paper.to_string(),
            rs.to_string(),
            us.to_string(),
            ms.to_string(),
        ]
    })
    .collect();
    print_table(&headers, &rows);

    println!("\nThe reserve plan (this work):");
    println!("{}", fhe_ir::text::print(&full.scheduled.program));
    assert!(full.latency_us < ra.latency_us && ra.latency_us < eva.latency_us);
}
