//! A recycling arena for RNS limb buffers.
//!
//! Every limb of every [`crate::poly::RnsPoly`] is a `Vec<u64>` of length
//! `N`, so one uniform free list serves polynomials at every level: a
//! checkout for a level-`l` polynomial takes `l` (+1 with the special
//! limb) buffers, and recycling a polynomial returns them. Buffers are
//! ordinary `Vec`s — checkout/return is pure accounting, so a pooled
//! polynomial that escapes (e.g. into a caller-held ciphertext) simply
//! drops normally and only the pool's live-byte counter stays high until
//! the owner recycles it.
//!
//! The pool is internally synchronized: the per-digit key-switch fan-out
//! in [`crate::Evaluator`] checks buffers out from worker threads. Each
//! checkout/return takes the lock once for the whole polynomial, not per
//! limb.

use std::sync::Mutex;

/// Counters describing a [`PolyPool`]'s traffic. Byte figures cover only
/// pool-managed buffers (checked-out or adopted); key material and encoder
/// scratch are accounted separately by the runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the free list.
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned to the free list.
    pub returns: u64,
    /// Foreign buffers adopted into the live accounting (e.g. fresh
    /// encryptions produced outside the pool).
    pub adopted: u64,
    /// Bytes currently checked out (live polynomials).
    pub live_bytes: u64,
    /// High-water mark of [`PoolStats::live_bytes`].
    pub peak_bytes: u64,
    /// Bytes currently parked on the free list.
    pub free_bytes: u64,
}

impl PoolStats {
    /// Fraction of checkouts served from the free list (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct PoolInner {
    free: Vec<Vec<u64>>,
    stats: PoolStats,
}

/// A free list of `N`-length limb buffers shared by one evaluator (see the
/// module docs for the accounting model).
#[derive(Debug)]
pub struct PolyPool {
    degree: usize,
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for PoolInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolInner")
            .field("free", &self.free.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PolyPool {
    /// An empty pool for limb buffers of length `degree`.
    pub fn new(degree: usize) -> Self {
        PolyPool {
            degree,
            inner: Mutex::new(PoolInner {
                free: Vec::new(),
                stats: PoolStats::default(),
            }),
        }
    }

    /// The limb length this pool recycles.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Checks out `count` zeroed limb buffers.
    pub fn take_zeroed(&self, count: usize) -> Vec<Vec<u64>> {
        let mut limbs = self.take_raw(count);
        for limb in &mut limbs {
            limb.fill(0);
        }
        limbs
    }

    /// Checks out `count` limb buffers with unspecified contents — for
    /// callers that overwrite every slot (clones, automorphism targets).
    pub fn take_raw(&self, count: usize) -> Vec<Vec<u64>> {
        let limb_bytes = (self.degree * 8) as u64;
        let mut inner = self.inner.lock().expect("pool lock");
        let reused = count.min(inner.free.len());
        let mut limbs = Vec::with_capacity(count);
        for _ in 0..reused {
            limbs.push(inner.free.pop().expect("free buffer"));
        }
        inner.stats.hits += reused as u64;
        inner.stats.free_bytes -= reused as u64 * limb_bytes;
        let fresh = count - reused;
        inner.stats.misses += fresh as u64;
        inner.stats.live_bytes += count as u64 * limb_bytes;
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(inner.stats.live_bytes);
        drop(inner);
        for _ in 0..fresh {
            limbs.push(vec![0u64; self.degree]);
        }
        limbs
    }

    /// Returns limb buffers to the free list. Buffers whose length differs
    /// from the pool's degree are dropped (never resized in place).
    pub fn put(&self, limbs: impl IntoIterator<Item = Vec<u64>>) {
        let limb_bytes = (self.degree * 8) as u64;
        let mut inner = self.inner.lock().expect("pool lock");
        for limb in limbs {
            inner.stats.live_bytes = inner.stats.live_bytes.saturating_sub(limb_bytes);
            if limb.len() == self.degree {
                inner.stats.returns += 1;
                inner.stats.free_bytes += limb_bytes;
                inner.free.push(limb);
            }
        }
    }

    /// Registers `limbs` buffers created outside the pool (e.g. a fresh
    /// encryption) as live, so that recycling them later balances the
    /// accounting and peak bytes cover all polynomial memory.
    pub fn adopt(&self, limbs: usize) {
        let bytes = (limbs * self.degree * 8) as u64;
        let mut inner = self.inner.lock().expect("pool lock");
        inner.stats.adopted += limbs as u64;
        inner.stats.live_bytes += bytes;
        inner.stats.peak_bytes = inner.stats.peak_bytes.max(inner.stats.live_bytes);
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().expect("pool lock").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_miss_then_hit() {
        let pool = PolyPool::new(8);
        let a = pool.take_zeroed(3);
        assert_eq!(a.len(), 3);
        let s = pool.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 0);
        assert_eq!(s.live_bytes, 3 * 64);
        pool.put(a);
        let s = pool.stats();
        assert_eq!(s.returns, 3);
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.free_bytes, 3 * 64);
        let b = pool.take_zeroed(2);
        let s = pool.stats();
        assert_eq!(s.hits, 2, "reuse must come from the free list");
        assert_eq!(s.misses, 3);
        assert!(b.iter().all(|l| l.iter().all(|&x| x == 0)));
    }

    #[test]
    fn zeroed_checkout_clears_recycled_contents() {
        let pool = PolyPool::new(4);
        let mut a = pool.take_zeroed(1);
        a[0][2] = 99;
        pool.put(a);
        let b = pool.take_zeroed(1);
        assert_eq!(b[0], vec![0u64; 4]);
    }

    #[test]
    fn peak_tracks_high_water_and_adoption() {
        let pool = PolyPool::new(8);
        let a = pool.take_zeroed(2);
        pool.adopt(3);
        assert_eq!(pool.stats().live_bytes, 5 * 64);
        assert_eq!(pool.stats().peak_bytes, 5 * 64);
        pool.put(a);
        // Adopted bytes stay live until their buffers are put back.
        assert_eq!(pool.stats().live_bytes, 3 * 64);
        assert_eq!(pool.stats().peak_bytes, 5 * 64);
        assert_eq!(pool.stats().adopted, 3);
    }

    #[test]
    fn wrong_length_buffers_are_dropped_not_pooled() {
        let pool = PolyPool::new(8);
        pool.adopt(1);
        pool.put([vec![0u64; 4]]);
        let s = pool.stats();
        assert_eq!(s.returns, 0);
        assert_eq!(s.free_bytes, 0);
        assert_eq!(s.live_bytes, 0, "live accounting still balanced");
    }

    #[test]
    fn hit_rate_reflects_traffic() {
        let pool = PolyPool::new(8);
        assert_eq!(pool.stats().hit_rate(), 0.0);
        let a = pool.take_zeroed(1);
        pool.put(a);
        let _b = pool.take_zeroed(1);
        assert!((pool.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
