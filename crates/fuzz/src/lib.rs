//! Differential fuzzing for the scale-management pipeline.
//!
//! The paper's claim is semantic: every compiler (Reserve, EVA, Hecate)
//! must produce schedules that compute the *same function* as the source
//! program, up to CKKS noise, while respecting the scale/level type
//! system. Eight hand-written workloads cannot cover the op-mix space, so
//! this crate turns the pipeline into its own oracle:
//!
//! * [`gen`] — seeded random [`fhe_ir::Program`] generator with
//!   configurable op mix, depth and magnitude budgets;
//! * [`oracle`] — the differential harness: all compilers × all
//!   executors, schedule type-system invariants, metamorphic
//!   pass-preservation, textual round-trip;
//! * [`shrink`] — greedy minimizer preserving the failure label;
//! * [`corpus`] — textual reproducers (committed under `tests/corpus/`)
//!   that replay from the file alone.
//!
//! The `fuzz` binary drives a seed range from the command line; the
//! bounded smoke run and corpus replay live in the workspace-level
//! `tests/fuzz_smoke.rs`.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use corpus::{load_dir, parse_case, render_case, write_case, CorpusCase};
pub use gen::{generate, GenConfig, OpMix};
pub use oracle::{
    check_program, compilers, input_data, schedule_fits_backend, structural_diff, Divergence,
    DivergenceKind, OracleConfig,
};
pub use shrink::shrink;

/// Outcome of fuzzing one seed.
#[derive(Debug, Clone)]
pub struct SeedResult {
    /// The seed.
    pub seed: u64,
    /// The generated program.
    pub program: fhe_ir::Program,
    /// Every divergence the oracle found (empty = clean).
    pub divergences: Vec<Divergence>,
}

/// Generates the program for `seed` and runs the full oracle on it.
pub fn run_seed(seed: u64, gen_cfg: &GenConfig, oracle_cfg: &OracleConfig) -> SeedResult {
    let program = generate(seed, gen_cfg);
    let divergences = check_program(&program, oracle_cfg);
    SeedResult {
        seed,
        program,
        divergences,
    }
}
