//! Scoped-thread fan-out of independent per-limb jobs.
//!
//! RNS limbs never interact inside an NTT conversion, a pointwise product,
//! a rescale correction, or a key-switch decomposition, so those loops
//! parallelize by slicing the limb array across `std::thread::scope`
//! workers (the same dependency-free pattern as the fig6 waterline sweep —
//! no external crates). Every job is deterministic and writes only its own
//! slice, so results are bit-identical for any thread count;
//! [`crate::CkksParams::threads`] `= 1` takes the plain serial loop.

/// Runs `f(index, &mut items[index])` for every item, fanning contiguous
/// chunks across up to `threads` scoped workers.
pub(crate) fn for_each<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let per = n.div_ceil(threads.min(n));
    let f = &f;
    std::thread::scope(|scope| {
        for (c, chunk) in items.chunks_mut(per).enumerate() {
            scope.spawn(move || {
                for (k, item) in chunk.iter_mut().enumerate() {
                    f(c * per + k, item);
                }
            });
        }
    });
}

/// Like [`for_each`], but each worker additionally owns a scratch buffer
/// reused across every item it processes — rescale and key-switch
/// corrections need one `N`-length temporary per limb, and this caps the
/// allocations at one per worker instead of one per limb.
pub(crate) fn for_each_with_scratch<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T, &mut Vec<u64>) + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let mut scratch = Vec::new();
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item, &mut scratch);
        }
        return;
    }
    let per = n.div_ceil(threads.min(n));
    let f = &f;
    std::thread::scope(|scope| {
        for (c, chunk) in items.chunks_mut(per).enumerate() {
            scope.spawn(move || {
                let mut scratch = Vec::new();
                for (k, item) in chunk.iter_mut().enumerate() {
                    f(c * per + k, item, &mut scratch);
                }
            });
        }
    });
}

/// Parallel `(0..count).map(f).collect()` over scoped workers, preserving
/// index order. Used for the per-limb key-switch decomposition, where each
/// job builds an owned polynomial.
pub(crate) fn map_range<T, F>(threads: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for_each(threads, &mut slots, |i, slot| *slot = Some(f(i)));
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        for threads in [1usize, 2, 3, 8, 64] {
            let mut items: Vec<u64> = (0..17).collect();
            for_each(threads, &mut items, |i, x| *x = *x * 3 + i as u64);
            let expect: Vec<u64> = (0..17).map(|i| i * 3 + i).collect();
            assert_eq!(items, expect, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_variant_agrees_and_reuses() {
        for threads in [1usize, 4] {
            let mut items: Vec<u64> = (0..9).collect();
            for_each_with_scratch(threads, &mut items, |i, x, scratch| {
                scratch.clear();
                scratch.extend((0..=i as u64).map(|k| k + *x));
                *x = scratch.iter().sum();
            });
            let expect: Vec<u64> = (0..9u64).map(|i| (0..=i).map(|k| k + i).sum()).collect();
            assert_eq!(items, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_range_preserves_order() {
        for threads in [1usize, 3] {
            let out = map_range(threads, 13, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }
}
