//! Homomorphic evaluation: the RNS-CKKS operations of Table 2.

use std::sync::Arc;

use crate::cipher::Ciphertext;
use crate::context::CkksContext;
use crate::encoding::{Encoder, Plaintext};
use crate::keys::{rotation_to_galois, GaloisKeys, KeyCache, KswKey, RelinKey};
use crate::par;
use crate::poly::RnsPoly;
use crate::pool::{PolyPool, PoolStats};

/// Relative scale mismatch tolerated by additions. Two drift sources:
/// chain primes are only approximately `2^modulus_bits` (parts in
/// `2^40`), and fractional-bit upscale factors (e.g. `2^(35/2)` from
/// reserve's scale algebra) are realized by the nearest-integer
/// multiplier, off by up to `0.5/factor` (~1e-6 at `2^17.5`). Genuine
/// schedule bugs mismatch by whole rescale factors (`2^35` or more), so
/// 1e-4 keeps full discrimination.
const SCALE_TOLERANCE: f64 = 1e-4;

/// A rotation or conjugation needed a Galois key that is neither in the
/// static key set nor derivable from a [`KeyCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissingKeyError {
    /// The Galois element of the missing key.
    pub galois: usize,
    /// The rotation step that required it (`None` for conjugation).
    pub steps: Option<i64>,
}

impl std::fmt::Display for MissingKeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.steps {
            Some(s) => write!(
                f,
                "missing Galois key for rotation {s} (element {})",
                self.galois
            ),
            None => write!(
                f,
                "missing conjugation Galois key (element {})",
                self.galois
            ),
        }
    }
}

impl std::error::Error for MissingKeyError {}

/// Evaluator: executes homomorphic ops given the needed evaluation keys.
///
/// Hot-path temporaries and results draw their limb buffers from an
/// internal [`PolyPool`]; callers that retire ciphertexts can return the
/// buffers via [`RnsPoly::recycle`] against [`Evaluator::pool`], turning
/// later allocations into pool hits. Galois keys resolve from the static
/// key set first, then fall back to an optional lazy [`KeyCache`].
///
/// Keys, cache and pool are held behind [`Arc`] handles so a serving layer
/// can share one set of session keys (and one global pool) across many
/// short-lived evaluators without cloning key material; the plain
/// constructors wrap their arguments and behave exactly as before.
#[derive(Debug)]
pub struct Evaluator<'c> {
    ctx: &'c CkksContext,
    encoder: Encoder<'c>,
    relin: Option<Arc<RelinKey>>,
    galois: Arc<GaloisKeys>,
    cache: Option<Arc<KeyCache>>,
    pool: Arc<PolyPool>,
}

impl<'c> Evaluator<'c> {
    /// Creates an evaluator. `relin` is needed for cipher×cipher
    /// multiplication; `galois` for rotations.
    pub fn new(ctx: &'c CkksContext, relin: Option<RelinKey>, galois: GaloisKeys) -> Self {
        Self::new_shared(ctx, relin.map(Arc::new), Arc::new(galois))
    }

    /// Creates an evaluator from shared key handles, so one relin/Galois key
    /// set can back many evaluators (e.g. one per request in a server).
    pub fn new_shared(
        ctx: &'c CkksContext,
        relin: Option<Arc<RelinKey>>,
        galois: Arc<GaloisKeys>,
    ) -> Self {
        Evaluator {
            ctx,
            encoder: Encoder::new(ctx),
            relin,
            galois,
            cache: None,
            pool: Arc::new(PolyPool::new(ctx.degree())),
        }
    }

    /// Attaches a lazy Galois-key cache consulted when a rotation's key is
    /// absent from the static set.
    pub fn with_key_cache(self, cache: KeyCache) -> Self {
        self.with_key_cache_handle(Arc::new(cache))
    }

    /// Attaches a *shared* lazy Galois-key cache (see
    /// [`Evaluator::with_key_cache`]); the cache and its stats outlive this
    /// evaluator.
    pub fn with_key_cache_handle(mut self, cache: Arc<KeyCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Replaces the evaluator's limb-buffer pool with a shared one, so many
    /// evaluators (sessions) recycle through one global free list.
    ///
    /// # Panics
    ///
    /// Panics if the pool's buffer degree differs from the context's.
    pub fn with_pool(mut self, pool: Arc<PolyPool>) -> Self {
        assert_eq!(
            pool.degree(),
            self.ctx.degree(),
            "pool degree must match the context degree"
        );
        self.pool = pool;
        self
    }

    /// The attached key cache, if any.
    pub fn key_cache(&self) -> Option<&KeyCache> {
        self.cache.as_deref()
    }

    /// The evaluator's limb-buffer pool (for recycling retired ciphertexts
    /// and reading allocation stats).
    pub fn pool(&self) -> &PolyPool {
        &self.pool
    }

    /// A snapshot of the pool's counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Returns a retired ciphertext's limb buffers to the pool, turning
    /// later allocations at its level into pool hits. Safe on any
    /// ciphertext (pooled or not); buffers of a foreign degree are dropped.
    pub fn recycle_ct(&self, ct: Ciphertext) {
        ct.c0.recycle(&self.pool);
        ct.c1.recycle(&self.pool);
    }

    /// A pooled deep copy of a ciphertext.
    fn clone_ct(&self, a: &Ciphertext) -> Ciphertext {
        Ciphertext {
            c0: a.c0.clone_in(&self.pool),
            c1: a.c1.clone_in(&self.pool),
            level: a.level,
            scale: a.scale,
        }
    }

    /// Resolves the key for Galois element `g` (static set first, then the
    /// cache) and runs `f` with it.
    fn with_galois_key<R>(
        &self,
        g: usize,
        steps: Option<i64>,
        f: impl FnOnce(&KswKey) -> R,
    ) -> Result<R, MissingKeyError> {
        if let Some(key) = self.galois.get(g) {
            return Ok(f(key));
        }
        if let Some(cache) = &self.cache {
            return Ok(cache.with_key(self.ctx, g, f));
        }
        Err(MissingKeyError { galois: g, steps })
    }

    /// The context.
    pub fn context(&self) -> &'c CkksContext {
        self.ctx
    }

    /// The encoder (shared tables).
    pub fn encoder(&self) -> &Encoder<'c> {
        &self.encoder
    }

    fn check_pair(&self, a: &Ciphertext, b: &Ciphertext) {
        assert_eq!(a.level, b.level, "operand levels must match");
    }

    fn check_scales(&self, a: f64, b: f64) {
        assert!(
            (a / b - 1.0).abs() < SCALE_TOLERANCE,
            "operand scales must match: {a} vs {b}"
        );
    }

    /// cipher + cipher (equal scale and level).
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.check_pair(a, b);
        self.check_scales(a.scale, b.scale);
        let mut out = self.clone_ct(a);
        out.c0.add_assign(self.ctx, &b.c0);
        out.c1.add_assign(self.ctx, &b.c1);
        out
    }

    /// cipher − cipher (equal scale and level).
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.check_pair(a, b);
        self.check_scales(a.scale, b.scale);
        let mut out = self.clone_ct(a);
        out.c0.sub_assign(self.ctx, &b.c0);
        out.c1.sub_assign(self.ctx, &b.c1);
        out
    }

    /// −cipher.
    pub fn neg(&self, a: &Ciphertext) -> Ciphertext {
        let mut out = self.clone_ct(a);
        out.c0.neg_assign(self.ctx);
        out.c1.neg_assign(self.ctx);
        out
    }

    /// cipher + plain. The plaintext must be encoded at the ciphertext's
    /// scale and level.
    pub fn add_plain(&self, a: &Ciphertext, p: &Plaintext) -> Ciphertext {
        assert_eq!(a.level, p.level, "plaintext level must match");
        self.check_scales(a.scale, p.scale);
        let mut out = self.clone_ct(a);
        out.c0.add_assign(self.ctx, &p.poly);
        out
    }

    /// Convenience: encodes `values` to match `a` and adds.
    pub fn add_plain_values(&self, a: &Ciphertext, values: &[f64]) -> Ciphertext {
        let p = self.encoder.encode(values, a.scale, a.level);
        self.add_plain(a, &p)
    }

    /// cipher × plain; the result scale is the product of scales.
    pub fn mul_plain(&self, a: &Ciphertext, p: &Plaintext) -> Ciphertext {
        assert_eq!(a.level, p.level, "plaintext level must match");
        let mut out = self.clone_ct(a);
        out.c0.mul_assign(self.ctx, &p.poly);
        out.c1.mul_assign(self.ctx, &p.poly);
        out.scale = a.scale * p.scale;
        out
    }

    /// Convenience: encodes `values` at `scale` and multiplies.
    pub fn mul_plain_values(&self, a: &Ciphertext, values: &[f64], scale: f64) -> Ciphertext {
        let p = self.encoder.encode(values, scale, a.level);
        self.mul_plain(a, &p)
    }

    /// cipher × cipher with relinearization (equal levels; scales multiply).
    ///
    /// # Panics
    ///
    /// Panics if no relinearization key was provided.
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.check_pair(a, b);
        let relin = self
            .relin
            .as_ref()
            .expect("relinearization key required for mul");
        let ctx = self.ctx;
        let pool = &self.pool;
        let mut d0 = a.c0.clone_in(pool);
        d0.mul_assign(ctx, &b.c0);
        let mut d1 = a.c0.clone_in(pool);
        d1.mul_assign(ctx, &b.c1);
        // d1 += a.c1 ∘ b.c0, fused — no temporary product polynomial.
        a.c1.mul_acc(ctx, &b.c0, &mut d1);
        let mut d2 = a.c1.clone_in(pool);
        d2.mul_assign(ctx, &b.c1);
        let (k0, k1) = self.key_switch(&d2, &relin.0);
        d2.recycle(pool);
        d0.add_assign(ctx, &k0);
        k0.recycle(pool);
        d1.add_assign(ctx, &k1);
        k1.recycle(pool);
        Ciphertext {
            c0: d0,
            c1: d1,
            level: a.level,
            scale: a.scale * b.scale,
        }
    }

    /// Squares a ciphertext (same as `mul(a, a)`).
    pub fn square(&self, a: &Ciphertext) -> Ciphertext {
        self.mul(a, a)
    }

    /// Fused cipher × cipher + relinearize + rescale: one pass over the
    /// product limbs with the rescale applied to the relinearized pair in
    /// place. Bit-identical to `rescale(&mul(a, b))` — the fusion skips
    /// the full-level intermediate that `rescale`'s ciphertext clone
    /// would materialize (two level-`l` polynomials), not any arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if no relinearization key was provided or `a` is at level 1.
    pub fn mul_rescale(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        assert!(a.level >= 2, "cannot rescale at level 1");
        let mut out = self.mul(a, b);
        let dropped = self.ctx.moduli()[out.level - 1].value() as f64;
        out.c0.rescale_last_in(self.ctx, &self.pool);
        out.c1.rescale_last_in(self.ctx, &self.pool);
        out.level -= 1;
        out.scale /= dropped;
        out
    }

    /// Rotates the slot vector by `steps` (positive = towards slot 0).
    ///
    /// # Panics
    ///
    /// Panics if the needed Galois key is missing; see
    /// [`Evaluator::try_rotate`] for the fallible form.
    pub fn rotate(&self, a: &Ciphertext, steps: i64) -> Ciphertext {
        self.try_rotate(a, steps).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Rotates the slot vector by `steps`, reporting a missing Galois key
    /// as a [`MissingKeyError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`MissingKeyError`] when the needed key is neither in the
    /// static set nor derivable from an attached [`KeyCache`].
    pub fn try_rotate(&self, a: &Ciphertext, steps: i64) -> Result<Ciphertext, MissingKeyError> {
        let g = rotation_to_galois(self.ctx, steps);
        if g == 1 {
            return Ok(self.clone_ct(a));
        }
        self.with_galois_key(g, Some(steps), |key| self.apply_galois(a, g, key))
    }

    /// The shared automorphism + key-switch body of rotation and
    /// conjugation, with all temporaries drawn from the pool.
    fn apply_galois(&self, a: &Ciphertext, g: usize, key: &KswKey) -> Ciphertext {
        let ctx = self.ctx;
        let pool = &self.pool;
        let mut c0 = a.c0.clone_in(pool);
        c0.automorphism_in(ctx, g, pool);
        let mut c1 = a.c1.clone_in(pool);
        c1.automorphism_in(ctx, g, pool);
        let (k0, k1) = self.key_switch(&c1, key);
        c1.recycle(pool);
        c0.add_assign(ctx, &k0);
        k0.recycle(pool);
        Ciphertext {
            c0,
            c1: k1,
            level: a.level,
            scale: a.scale,
        }
    }

    /// `rescale`: divides the scale by the dropped prime (`≈ R`), level −1.
    ///
    /// # Panics
    ///
    /// Panics at level 1.
    pub fn rescale(&self, a: &Ciphertext) -> Ciphertext {
        assert!(a.level >= 2, "cannot rescale at level 1");
        let dropped = self.ctx.moduli()[a.level - 1].value() as f64;
        let mut out = self.clone_ct(a);
        out.c0.rescale_last_in(self.ctx, &self.pool);
        out.c1.rescale_last_in(self.ctx, &self.pool);
        out.level -= 1;
        out.scale = a.scale / dropped;
        out
    }

    /// `modswitch`: drops one modulus limb without changing the scale.
    ///
    /// # Panics
    ///
    /// Panics at level 1.
    pub fn mod_switch(&self, a: &Ciphertext) -> Ciphertext {
        assert!(a.level >= 2, "cannot modswitch at level 1");
        let mut out = self.clone_ct(a);
        out.c0.drop_to_level_in(a.level - 1, &self.pool);
        out.c1.drop_to_level_in(a.level - 1, &self.pool);
        out.level -= 1;
        out
    }

    /// `upscale`: raises the scale by `factor` without changing the level
    /// (Table 2).
    ///
    /// Lowered as an exact integer scalar multiplication: both polynomials
    /// and the scale are multiplied by `m = round(factor)`, so the
    /// encrypted *values* are preserved exactly and only the claimed
    /// target scale drifts, by a relative `≤ 1/(2·factor)`. Encoding an
    /// all-ones plaintext at `factor` instead (the naive lowering) rounds
    /// the single nonzero coefficient to an integer, which corrupts the
    /// values themselves by up to that same ratio — a 29% error for the
    /// `factor = √2` upscales fractional-scale schedules emit.
    pub fn upscale(&self, a: &Ciphertext, factor: f64) -> Ciphertext {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "upscale factor must be >= 1"
        );
        let m = factor.round().max(1.0);
        let mut out = self.clone_ct(a);
        if m > 1.0 && m < 2f64.powi(53) {
            out.c0.mul_scalar_assign(self.ctx, m as u64);
            out.c1.mul_scalar_assign(self.ctx, m as u64);
            out.scale = a.scale * m;
        } else if m > 1.0 {
            // Factors beyond u64 range keep the encoded-identity path;
            // at ≥ 2^53 its relative rounding error is below f64 epsilon.
            let ones = vec![1.0; self.ctx.slots()];
            let p = self.encoder.encode(&ones, factor, a.level);
            return self.mul_plain(a, &p);
        }
        out
    }

    /// RNS-decomposes `d` (NTT, level `l`) into per-limb polynomials lifted
    /// to the extended basis `Q_l·P`, in coefficient domain — the shared
    /// front half of every key switch.
    fn decompose_lifted(&self, d: &RnsPoly) -> Vec<RnsPoly> {
        let ctx = self.ctx;
        let pool = &self.pool;
        let l = d.level();
        let mut dc = d.clone_in(pool);
        dc.to_coeff(ctx);
        let out = {
            let dc = &dc;
            // Each digit's lifted polynomial is built independently; fan the
            // digits across the worker threads. Every limb of every digit is
            // fully overwritten below, so raw (unzeroed) checkouts suffice.
            let est = par::cost::POINTWISE * (ctx.degree() * (l + 1)) as u64;
            par::map_range(ctx.threads(), est, l, |j| {
                let mut lifted = RnsPoly::zero_in(pool, ctx, l, true, false);
                for i in 0..l {
                    let m = ctx.moduli()[i];
                    let dst = lifted.limb_mut(i);
                    for (d, &src) in dst.iter_mut().zip(dc.limb(j)) {
                        *d = m.reduce(src);
                    }
                }
                let p = ctx.special();
                let dst = lifted.special_limb_mut();
                for (d, &src) in dst.iter_mut().zip(dc.limb(j)) {
                    *d = p.reduce(src);
                }
                lifted
            })
        };
        dc.recycle(pool);
        out
    }

    /// The back half of a key switch: NTT the (possibly permuted) lifted
    /// decomposition, inner-product with the key, and divide by `P`.
    /// Consumes the decomposition so each digit transforms in place, and
    /// multiplies against the full-basis key polynomials directly — no
    /// per-digit clone or [`RnsPoly::restrict_for_keyswitch`] copy.
    fn key_switch_lifted(
        &self,
        mut lifted: Vec<RnsPoly>,
        l: usize,
        key: &KswKey,
    ) -> (RnsPoly, RnsPoly) {
        let ctx = self.ctx;
        let pool = &self.pool;
        let mut acc0 = RnsPoly::zero_in(pool, ctx, l, true, true);
        let mut acc1 = RnsPoly::zero_in(pool, ctx, l, true, true);
        for (j, t) in lifted.iter_mut().enumerate() {
            t.to_ntt(ctx);
            t.mul_acc_restricted(ctx, &key.k0[j], &mut acc0);
            t.mul_acc_restricted(ctx, &key.k1[j], &mut acc1);
        }
        for t in lifted {
            t.recycle(pool);
        }
        acc0.rescale_special_in(ctx, pool);
        acc1.rescale_special_in(ctx, pool);
        (acc0, acc1)
    }

    /// The special-prime key switch: given `d` (NTT, level `l`) and a key
    /// for source secret `t`, returns `(k0, k1)` with
    /// `k0 + k1·s ≈ d·t` at level `l`.
    fn key_switch(&self, d: &RnsPoly, key: &KswKey) -> (RnsPoly, RnsPoly) {
        let lifted = self.decompose_lifted(d);
        self.key_switch_lifted(lifted, d.level(), key)
    }

    /// Computes several rotations of one ciphertext with a *hoisted* key
    /// switch (SEAL-style): the expensive RNS decomposition of `c1` is done
    /// once and shared; each rotation only permutes the decomposed
    /// polynomials and runs the key inner product. Saves the per-rotation
    /// inverse NTT + reduction work — a win for convolution kernels that
    /// rotate the same ciphertext many times.
    ///
    /// # Panics
    ///
    /// Panics if any needed Galois key is missing; see
    /// [`Evaluator::try_rotate_hoisted`] for the fallible form.
    pub fn rotate_hoisted(&self, a: &Ciphertext, steps: &[i64]) -> Vec<Ciphertext> {
        self.try_rotate_hoisted(a, steps)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Hoisted multi-rotation (see [`Evaluator::rotate_hoisted`]) that
    /// reports a missing Galois key instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`MissingKeyError`] for the first rotation step whose key is
    /// neither in the static set nor derivable from an attached
    /// [`KeyCache`]; already-computed rotations are discarded.
    pub fn try_rotate_hoisted(
        &self,
        a: &Ciphertext,
        steps: &[i64],
    ) -> Result<Vec<Ciphertext>, MissingKeyError> {
        let ctx = self.ctx;
        let pool = &self.pool;
        let l = a.level;
        let lifted = self.decompose_lifted(&a.c1);
        let mut out = Vec::with_capacity(steps.len());
        for &step in steps {
            let g = rotation_to_galois(ctx, step);
            if g == 1 {
                out.push(self.clone_ct(a));
                continue;
            }
            let rotated = self.with_galois_key(g, Some(step), |key| {
                // Decomposition commutes with the automorphism (both are
                // coefficient-wise), so permute the shared lifted polys.
                let permuted: Vec<RnsPoly> = lifted
                    .iter()
                    .map(|lp| {
                        let mut t = lp.clone_in(pool);
                        t.automorphism_in(ctx, g, pool);
                        t
                    })
                    .collect();
                let (k0, k1) = self.key_switch_lifted(permuted, l, key);
                let mut c0 = a.c0.clone_in(pool);
                c0.automorphism_in(ctx, g, pool);
                c0.add_assign(ctx, &k0);
                k0.recycle(pool);
                Ciphertext {
                    c0,
                    c1: k1,
                    level: l,
                    scale: a.scale,
                }
            });
            match rotated {
                Ok(ct) => out.push(ct),
                Err(e) => {
                    for lp in lifted {
                        lp.recycle(pool);
                    }
                    return Err(e);
                }
            }
        }
        for lp in lifted {
            lp.recycle(pool);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::{decrypt, encrypt_symmetric};
    use crate::context::{CkksContext, CkksParams};
    use crate::keys::KeyGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        ctx: CkksContext,
    }

    fn fixture(levels: usize) -> Fixture {
        Fixture {
            ctx: CkksContext::new(CkksParams {
                poly_degree: 256,
                max_level: levels,
                modulus_bits: 45,
                special_bits: 46,
                error_std: 3.2,
                threads: 1,
            }),
        }
    }

    fn vals(ctx: &CkksContext, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..ctx.slots()).map(f).collect()
    }

    #[test]
    fn add_sub_neg() {
        let f = fixture(1);
        let mut rng = StdRng::seed_from_u64(1);
        let kg = KeyGenerator::new(&f.ctx, &mut rng);
        let sk = kg.secret_key();
        let ev = Evaluator::new(&f.ctx, None, GaloisKeys::default());
        let a = vals(&f.ctx, |i| i as f64 * 0.01);
        let b = vals(&f.ctx, |i| 1.0 - i as f64 * 0.02);
        let scale = 2f64.powi(30);
        let ca = encrypt_symmetric(&f.ctx, &sk, &ev.encoder().encode(&a, scale, 1), &mut rng);
        let cb = encrypt_symmetric(&f.ctx, &sk, &ev.encoder().encode(&b, scale, 1), &mut rng);
        let sum = ev.add(&ca, &cb);
        let diff = ev.sub(&ca, &cb);
        let neg = ev.neg(&ca);
        let ds = ev.encoder().decode(&decrypt(&f.ctx, &sk, &sum));
        let dd = ev.encoder().decode(&decrypt(&f.ctx, &sk, &diff));
        let dn = ev.encoder().decode(&decrypt(&f.ctx, &sk, &neg));
        for i in 0..8 {
            assert!((ds[i] - (a[i] + b[i])).abs() < 1e-4);
            assert!((dd[i] - (a[i] - b[i])).abs() < 1e-4);
            assert!((dn[i] + a[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn mul_relin_rescale() {
        let f = fixture(2);
        let mut rng = StdRng::seed_from_u64(2);
        let kg = KeyGenerator::new(&f.ctx, &mut rng);
        let sk = kg.secret_key();
        let relin = kg.relin_key(&mut rng);
        let ev = Evaluator::new(&f.ctx, Some(relin), GaloisKeys::default());
        let a = vals(&f.ctx, |i| ((i % 7) as f64 - 3.0) * 0.3);
        let b = vals(&f.ctx, |i| ((i % 5) as f64) * 0.25);
        let scale = 2f64.powi(40);
        let ca = encrypt_symmetric(&f.ctx, &sk, &ev.encoder().encode(&a, scale, 2), &mut rng);
        let cb = encrypt_symmetric(&f.ctx, &sk, &ev.encoder().encode(&b, scale, 2), &mut rng);
        let prod = ev.mul(&ca, &cb);
        assert!((prod.scale_bits() - 80.0).abs() < 0.1);
        let rescaled = ev.rescale(&prod);
        assert_eq!(rescaled.level, 1);
        assert!((rescaled.scale_bits() - 35.0).abs() < 0.1);
        let d = ev.encoder().decode(&decrypt(&f.ctx, &sk, &rescaled));
        for i in 0..16 {
            assert!(
                (d[i] - a[i] * b[i]).abs() < 1e-3,
                "slot {i}: {} vs {}",
                d[i],
                a[i] * b[i]
            );
        }
    }

    #[test]
    fn fused_mul_rescale_is_bit_identical_to_the_sequence() {
        let f = fixture(3);
        let mut rng = StdRng::seed_from_u64(7);
        let kg = KeyGenerator::new(&f.ctx, &mut rng);
        let sk = kg.secret_key();
        let relin = kg.relin_key(&mut rng);
        let ev = Evaluator::new(&f.ctx, Some(relin), GaloisKeys::default());
        let a = vals(&f.ctx, |i| ((i % 9) as f64 - 4.0) * 0.2);
        let b = vals(&f.ctx, |i| ((i % 4) as f64) * 0.3);
        let scale = 2f64.powi(40);
        let ca = encrypt_symmetric(&f.ctx, &sk, &ev.encoder().encode(&a, scale, 3), &mut rng);
        let cb = encrypt_symmetric(&f.ctx, &sk, &ev.encoder().encode(&b, scale, 3), &mut rng);
        let seq = ev.rescale(&ev.mul(&ca, &cb));
        let fused = ev.mul_rescale(&ca, &cb);
        assert_eq!(fused.level, seq.level);
        assert_eq!(fused.scale.to_bits(), seq.scale.to_bits());
        for i in 0..fused.level {
            assert_eq!(fused.c0.limb(i), seq.c0.limb(i), "c0 limb {i}");
            assert_eq!(fused.c1.limb(i), seq.c1.limb(i), "c1 limb {i}");
        }
    }

    #[test]
    fn rotation_moves_slots() {
        let f = fixture(1);
        let mut rng = StdRng::seed_from_u64(3);
        let kg = KeyGenerator::new(&f.ctx, &mut rng);
        let sk = kg.secret_key();
        let gk = kg.galois_keys([1i64, 3], &mut rng);
        let ev = Evaluator::new(&f.ctx, None, gk);
        let a = vals(&f.ctx, |i| i as f64);
        let scale = 2f64.powi(35);
        let ca = encrypt_symmetric(&f.ctx, &sk, &ev.encoder().encode(&a, scale, 1), &mut rng);
        let r1 = ev.rotate(&ca, 1);
        let d = ev.encoder().decode(&decrypt(&f.ctx, &sk, &r1));
        let slots = f.ctx.slots();
        for i in 0..8 {
            let expect = a[(i + 1) % slots];
            assert!(
                (d[i] - expect).abs() < 1e-2,
                "slot {i}: {} vs {expect}",
                d[i]
            );
        }
        // Rotation by 0 is identity.
        let r0 = ev.rotate(&ca, 0);
        let d0 = ev.encoder().decode(&decrypt(&f.ctx, &sk, &r0));
        assert!((d0[0] - a[0]).abs() < 1e-3);
    }

    #[test]
    fn mul_plain_and_upscale_and_modswitch() {
        let f = fixture(2);
        let mut rng = StdRng::seed_from_u64(4);
        let kg = KeyGenerator::new(&f.ctx, &mut rng);
        let sk = kg.secret_key();
        let ev = Evaluator::new(&f.ctx, None, GaloisKeys::default());
        let a = vals(&f.ctx, |i| (i % 9) as f64 * 0.1);
        let w = vals(&f.ctx, |i| ((i % 3) as f64) - 1.0);
        let scale = 2f64.powi(30);
        let ca = encrypt_symmetric(&f.ctx, &sk, &ev.encoder().encode(&a, scale, 2), &mut rng);
        // cipher × plain.
        let prod = ev.mul_plain_values(&ca, &w, 2f64.powi(20));
        let d = ev.encoder().decode(&decrypt(&f.ctx, &sk, &prod));
        for i in 0..8 {
            assert!((d[i] - a[i] * w[i]).abs() < 1e-3);
        }
        // upscale raises scale, preserves value.
        let up = ev.upscale(&ca, 2f64.powf(10.5));
        assert!((up.scale_bits() - 40.5).abs() < 0.01);
        let du = ev.encoder().decode(&decrypt(&f.ctx, &sk, &up));
        assert!((du[3] - a[3]).abs() < 1e-3);
        // modswitch drops level, preserves scale and value.
        let ms = ev.mod_switch(&ca);
        assert_eq!(ms.level, 1);
        assert_eq!(ms.scale, ca.scale);
        let dm = ev.encoder().decode(&decrypt(&f.ctx, &sk, &ms));
        assert!((dm[5] - a[5]).abs() < 1e-3);
    }

    #[test]
    fn upscale_integer_factor_is_exact() {
        // Fuzzer-found (tests/corpus/upscale_fractional_precision.fhe):
        // lowering upscale as mul_plain by an encoded all-ones plaintext
        // rounds the single nonzero coefficient — 29% value error for a
        // factor of √2. The integer scalar path must be exact, and a
        // factor that rounds to 1 must be the identity.
        let f = fixture(1);
        let mut rng = StdRng::seed_from_u64(11);
        let kg = KeyGenerator::new(&f.ctx, &mut rng);
        let sk = kg.secret_key();
        let ev = Evaluator::new(&f.ctx, None, GaloisKeys::default());
        let a = vals(&f.ctx, |i| ((i % 13) as f64 - 6.0) * 0.05);
        let scale = 2f64.powi(30);
        let ca = encrypt_symmetric(&f.ctx, &sk, &ev.encoder().encode(&a, scale, 1), &mut rng);
        let base = ev.encoder().decode(&decrypt(&f.ctx, &sk, &ca));
        // Integer factor: value preserved to the ciphertext's own noise
        // (scalar multiply adds none), scale tracks the actual multiplier.
        let up = ev.upscale(&ca, 7.0);
        assert_eq!(up.scale, scale * 7.0);
        let d = ev.encoder().decode(&decrypt(&f.ctx, &sk, &up));
        for i in 0..16 {
            assert!(
                (d[i] - base[i]).abs() < 1e-9,
                "slot {i}: {} vs {}",
                d[i],
                base[i]
            );
        }
        // √2 rounds to 1: identity, not a 29%-off multiply.
        let noop = ev.upscale(&ca, std::f64::consts::SQRT_2);
        assert_eq!(noop.scale, ca.scale);
        assert_eq!(noop.c0, ca.c0);
        assert_eq!(noop.c1, ca.c1);
    }

    #[test]
    fn depth_two_polynomial() {
        // x⁴ via two squarings with rescale in between.
        let f = fixture(3);
        let mut rng = StdRng::seed_from_u64(5);
        let kg = KeyGenerator::new(&f.ctx, &mut rng);
        let sk = kg.secret_key();
        let relin = kg.relin_key(&mut rng);
        let ev = Evaluator::new(&f.ctx, Some(relin), GaloisKeys::default());
        let a = vals(&f.ctx, |i| ((i % 11) as f64 - 5.0) * 0.2);
        let scale = 2f64.powi(40);
        let ca = encrypt_symmetric(&f.ctx, &sk, &ev.encoder().encode(&a, scale, 3), &mut rng);
        let sq = ev.rescale(&ev.square(&ca));
        let quad = ev.rescale(&ev.square(&sq));
        assert_eq!(quad.level, 1);
        let d = ev.encoder().decode(&decrypt(&f.ctx, &sk, &quad));
        for i in 0..8 {
            let expect = a[i].powi(4);
            assert!(
                (d[i] - expect).abs() < 1e-2,
                "slot {i}: {} vs {expect}",
                d[i]
            );
        }
    }

    #[test]
    fn conjugation_preserves_real_values() {
        let f = fixture(1);
        let mut rng = StdRng::seed_from_u64(9);
        let kg = KeyGenerator::new(&f.ctx, &mut rng);
        let sk = kg.secret_key();
        let gk = kg.galois_keys_with_conjugation([], &mut rng);
        let ev = Evaluator::new(&f.ctx, None, gk);
        let a = vals(&f.ctx, |i| (i as f64 * 0.03).sin());
        let ca = encrypt_symmetric(
            &f.ctx,
            &sk,
            &ev.encoder().encode(&a, 2f64.powi(35), 1),
            &mut rng,
        );
        let conj = ev.conjugate(&ca);
        let d = ev.encoder().decode(&decrypt(&f.ctx, &sk, &conj));
        for i in 0..8 {
            assert!((d[i] - a[i]).abs() < 1e-2, "slot {i}: {} vs {}", d[i], a[i]);
        }
    }

    #[test]
    #[should_panic(expected = "scales must match")]
    fn mismatched_scales_rejected() {
        let f = fixture(1);
        let mut rng = StdRng::seed_from_u64(6);
        let kg = KeyGenerator::new(&f.ctx, &mut rng);
        let sk = kg.secret_key();
        let ev = Evaluator::new(&f.ctx, None, GaloisKeys::default());
        let ca = encrypt_symmetric(
            &f.ctx,
            &sk,
            &ev.encoder().encode(&[1.0], 2f64.powi(30), 1),
            &mut rng,
        );
        let cb = encrypt_symmetric(
            &f.ctx,
            &sk,
            &ev.encoder().encode(&[1.0], 2f64.powi(31), 1),
            &mut rng,
        );
        let _ = ev.add(&ca, &cb);
    }
}

impl<'c> Evaluator<'c> {
    /// Complex conjugation of the slot vector (the Galois automorphism
    /// `X ↦ X^{2N−1}`). For the real-valued encodings this library produces
    /// it is a no-op on values, but it exercises the conjugation key path
    /// used by complex pipelines.
    ///
    /// # Panics
    ///
    /// Panics if the conjugation Galois key is missing (generate it with
    /// [`crate::KeyGenerator::galois_keys_with_conjugation`]); see
    /// [`Evaluator::try_conjugate`] for the fallible form.
    pub fn conjugate(&self, a: &Ciphertext) -> Ciphertext {
        self.try_conjugate(a).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Complex conjugation (see [`Evaluator::conjugate`]) that reports a
    /// missing conjugation key instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`MissingKeyError`] when the conjugation key is neither in
    /// the static set nor derivable from an attached [`KeyCache`].
    pub fn try_conjugate(&self, a: &Ciphertext) -> Result<Ciphertext, MissingKeyError> {
        let g = 2 * self.ctx.degree() - 1;
        self.with_galois_key(g, None, |key| self.apply_galois(a, g, key))
    }
}

#[cfg(test)]
mod hoisted_rotation_tests {
    use super::*;
    use crate::cipher::{decrypt, encrypt_symmetric};
    use crate::context::{CkksContext, CkksParams};
    use crate::keys::KeyGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hoisted_rotations_match_individual_rotations() {
        let ctx = CkksContext::new(CkksParams {
            poly_degree: 256,
            max_level: 2,
            modulus_bits: 45,
            special_bits: 46,
            error_std: 3.2,
            threads: 1,
        });
        let mut rng = StdRng::seed_from_u64(11);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let sk = kg.secret_key();
        let steps = [0i64, 1, 3, 7];
        let gk = kg.galois_keys(steps, &mut rng);
        let ev = Evaluator::new(&ctx, None, gk);
        let values: Vec<f64> = (0..ctx.slots()).map(|i| (i % 13) as f64 * 0.1).collect();
        let ct = encrypt_symmetric(
            &ctx,
            &sk,
            &ev.encoder().encode(&values, 2f64.powi(40), 2),
            &mut rng,
        );
        let hoisted = ev.rotate_hoisted(&ct, &steps);
        for (k, h) in steps.iter().zip(&hoisted) {
            let individual = ev.rotate(&ct, *k);
            let dh = ev.encoder().decode(&decrypt(&ctx, &sk, h));
            let di = ev.encoder().decode(&decrypt(&ctx, &sk, &individual));
            for i in 0..16 {
                assert!(
                    (dh[i] - di[i]).abs() < 1e-3,
                    "step {k} slot {i}: hoisted {} vs individual {}",
                    dh[i],
                    di[i]
                );
                let expect = values[(i + k.rem_euclid(ctx.slots() as i64) as usize) % ctx.slots()];
                assert!((dh[i] - expect).abs() < 1e-2);
            }
        }
    }
}
