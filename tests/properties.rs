//! Property-based tests: random programs through the whole toolchain.
//!
//! For arbitrary DAG programs, every compiler must emit a schedule that
//! (a) passes the RNS-CKKS validator, (b) computes exactly the same
//! function as the source, and (c) respects the reserve type system; and
//! the core IR utilities (text format, passes, rationals) must uphold
//! their invariants.

use std::collections::HashMap;

use proptest::prelude::*;

use fhe_reserve::prelude::*;
use fhe_reserve::{baselines, runtime};
use fhe_ir::{Frac, Op, Program, ValueId};

/// A recipe for one random op over already-defined values.
#[derive(Debug, Clone)]
enum OpRecipe {
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Neg(usize),
    Rotate(usize, i64),
    Const(f64),
}

fn recipe_strategy() -> impl Strategy<Value = OpRecipe> {
    prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| OpRecipe::Add(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| OpRecipe::Sub(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| OpRecipe::Mul(a, b)),
        any::<usize>().prop_map(OpRecipe::Neg),
        (any::<usize>(), -4i64..4).prop_map(|(a, k)| OpRecipe::Rotate(a, k)),
        (-100i32..100).prop_map(|v| OpRecipe::Const(v as f64 / 100.0)),
    ]
}

/// Materializes a random program with bounded multiplicative depth (so it
/// always fits `max_level`), plus matching inputs.
fn build_program(
    recipes: &[OpRecipe],
    num_inputs: usize,
) -> (Program, HashMap<String, Vec<f64>>) {
    const SLOTS: usize = 8;
    const MAX_DEPTH: u32 = 6;
    let mut p = Program::new("random", SLOTS);
    let mut depth: Vec<u32> = Vec::new(); // muls consumed so far per value
    for i in 0..num_inputs {
        p.push(Op::Input { name: format!("in{i}") });
        depth.push(0);
    }
    for r in recipes {
        let n = p.num_ops();
        let pick = |raw: usize| ValueId((raw % n) as u32);
        let (op, d) = match r.clone() {
            OpRecipe::Add(a, b) => {
                let (a, b) = (pick(a), pick(b));
                (Op::Add(a, b), depth[a.index()].max(depth[b.index()]))
            }
            OpRecipe::Sub(a, b) => {
                let (a, b) = (pick(a), pick(b));
                (Op::Sub(a, b), depth[a.index()].max(depth[b.index()]))
            }
            OpRecipe::Mul(a, b) => {
                let (a, b) = (pick(a), pick(b));
                let d = depth[a.index()].max(depth[b.index()]) + 1;
                if d > MAX_DEPTH {
                    // Too deep: degrade to an addition to bound the level.
                    (Op::Add(a, b), d - 1)
                } else {
                    (Op::Mul(a, b), d)
                }
            }
            OpRecipe::Neg(a) => {
                let a = pick(a);
                (Op::Neg(a), depth[a.index()])
            }
            OpRecipe::Rotate(a, k) => {
                let a = pick(a);
                (Op::Rotate(a, k), depth[a.index()])
            }
            OpRecipe::Const(v) => (Op::Const { value: v.into() }, 0),
        };
        p.push(op);
        depth.push(d);
    }
    // Output: the last ciphertext value (guaranteed: inputs are cipher).
    let out = p
        .ids()
        .rev()
        .find(|&id| p.is_cipher(id))
        .expect("at least one cipher value");
    p.set_outputs(vec![out]);
    let inputs = (0..num_inputs)
        .map(|i| {
            (format!("in{i}"), (0..SLOTS).map(|s| ((s + i) as f64 * 0.11).sin() * 0.5).collect())
        })
        .collect();
    (p, inputs)
}

fn outputs_equal(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.iter().zip(y).all(|(u, v)| (u - v).abs() <= 1e-9 * v.abs().max(1.0))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reserve_compiler_is_sound_on_random_programs(
        recipes in proptest::collection::vec(recipe_strategy(), 1..40),
        num_inputs in 1usize..4,
        waterline in 15u32..50,
        mode_idx in 0usize..3,
    ) {
        let (program, inputs) = build_program(&recipes, num_inputs);
        let mode = Mode::ALL[mode_idx];
        let compiled = compile(&program, &Options::with_mode(waterline, mode))
            .expect("bounded-depth programs always compile");
        // (a) validator accepts.
        prop_assert!(compiled.scheduled.validate().is_ok());
        // (b) semantics preserved exactly.
        let reference = runtime::plain::execute(&program, &inputs);
        let got = runtime::plain::execute(&compiled.scheduled.program, &inputs);
        prop_assert!(outputs_equal(&got, &reference));
    }

    #[test]
    fn baselines_are_sound_on_random_programs(
        recipes in proptest::collection::vec(recipe_strategy(), 1..30),
        num_inputs in 1usize..3,
        waterline in 15u32..50,
    ) {
        let (program, inputs) = build_program(&recipes, num_inputs);
        let params = CompileParams::new(waterline);
        let reference = runtime::plain::execute(&program, &inputs);

        let eva = baselines::eva::compile(&program, &params).expect("EVA compiles");
        prop_assert!(eva.scheduled.validate().is_ok());
        prop_assert!(outputs_equal(
            &runtime::plain::execute(&eva.scheduled.program, &inputs),
            &reference
        ));

        let hec = baselines::hecate::compile(&program, &params, &baselines::HecateOptions {
            max_iterations: 20, patience: 20, seed: 9,
            max_choice: baselines::ForwardPlan::MAX_CHOICE,
        }).expect("Hecate compiles");
        prop_assert!(hec.scheduled.validate().is_ok());
        prop_assert!(outputs_equal(
            &runtime::plain::execute(&hec.scheduled.program, &inputs),
            &reference
        ));
    }

    #[test]
    fn reserve_solutions_type_check(
        recipes in proptest::collection::vec(recipe_strategy(), 1..40),
        waterline in 15u32..50,
        redistribute in any::<bool>(),
    ) {
        let (program, _) = build_program(&recipes, 2);
        let program = fhe_ir::passes::cleanup(&program);
        let params = CompileParams::new(waterline);
        let order = fhe_reserve::compiler::allocation_order(
            &program, &params, &CostModel::paper_table3());
        let sol = fhe_reserve::compiler::allocate(&program, &params, &order, redistribute);
        let errors = fhe_reserve::compiler::types::check(&program, &params, &sol);
        prop_assert!(errors.is_empty(), "type errors: {errors:?}");
    }

    #[test]
    fn text_roundtrip_on_random_programs(
        recipes in proptest::collection::vec(recipe_strategy(), 1..30),
    ) {
        let (program, _) = build_program(&recipes, 2);
        let text = fhe_ir::text::print(&program);
        let back = fhe_ir::text::parse(&text).expect("printer output parses");
        prop_assert_eq!(fhe_ir::text::print(&back), text);
    }

    #[test]
    fn cleanup_preserves_semantics(
        recipes in proptest::collection::vec(recipe_strategy(), 1..40),
    ) {
        let (program, inputs) = build_program(&recipes, 2);
        let cleaned = fhe_ir::passes::cleanup(&program);
        prop_assert!(cleaned.num_ops() <= program.num_ops());
        let reference = runtime::plain::execute(&program, &inputs);
        let got = runtime::plain::execute(&cleaned, &inputs);
        prop_assert!(outputs_equal(&got, &reference));
    }

    #[test]
    fn frac_field_laws(
        an in -1000i64..1000, ad in 1i64..60,
        bn in -1000i64..1000, bd in 1i64..60,
        cn in -1000i64..1000, cd in 1i64..60,
    ) {
        let a = Frac::ratio(an as i128, ad as i128);
        let b = Frac::ratio(bn as i128, bd as i128);
        let c = Frac::ratio(cn as i128, cd as i128);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Frac::ZERO);
        // Ceiling and the paper's fractional part are consistent:
        // x = ⌈x⌉ − 1 + {x}.
        prop_assert_eq!(Frac::from(a.ceil()) - Frac::from(1) + a.paper_frac(), a);
        // {x} ∈ (0, 1].
        prop_assert!(a.paper_frac() > Frac::ZERO && a.paper_frac() <= Frac::from(1));
    }

    #[test]
    fn reserve_is_invariant_under_rescale_in_schedules(
        recipes in proptest::collection::vec(recipe_strategy(), 1..30),
        waterline in 15u32..50,
    ) {
        // For every rescale in a compiled schedule, the reserve
        // (level·R − scale) of input and output is identical — the paper's
        // central invariant.
        let (program, _) = build_program(&recipes, 2);
        let compiled = compile(&program, &Options::new(waterline)).unwrap();
        let map = compiled.scheduled.validate().unwrap();
        let sp = &compiled.scheduled.program;
        let r = Frac::from(compiled.scheduled.params.rescale_bits);
        for id in sp.ids() {
            if let Op::Rescale(src) = sp.op(id) {
                let res_in = Frac::from(map.level(*src)) * r - map.scale_bits(*src);
                let res_out = Frac::from(map.level(id)) * r - map.scale_bits(id);
                prop_assert_eq!(res_in, res_out, "rescale at {} changed reserve", id);
            }
        }
    }
}
