//! RNS polynomials: elements of `Z_Q[X]/(X^N+1)` in residue representation.

use rand::Rng;

use crate::context::CkksContext;
use crate::modular::Modulus;
use crate::ntt::NttTable;
use crate::par;
use crate::pool::PolyPool;

/// A polynomial in RNS form: one residue vector (length `N`) per active
/// modulus. The active basis is the first `level` chain primes, optionally
/// extended by the special prime `P` (used only inside key switching).
///
/// `ntt` records whether limbs are in the transform (evaluation) domain.
/// Ciphertext polys are kept in NTT domain, like SEAL, so additions and
/// multiplications are pointwise and `rescale` pays domain-conversion
/// costs — reproducing Table 3's latency shape.
#[derive(Debug, Clone, PartialEq)]
pub struct RnsPoly {
    level: usize,
    special: bool,
    ntt: bool,
    limbs: Vec<Vec<u64>>,
}

impl RnsPoly {
    /// The all-zero polynomial over the given basis and domain.
    pub fn zero(ctx: &CkksContext, level: usize, special: bool, ntt: bool) -> Self {
        assert!(level >= 1 && level <= ctx.max_level(), "level out of range");
        let n = ctx.degree();
        let count = level + usize::from(special);
        RnsPoly {
            level,
            special,
            ntt,
            limbs: vec![vec![0u64; n]; count],
        }
    }

    /// The all-zero polynomial with limb buffers checked out of `pool`
    /// instead of freshly allocated — the hot-path twin of
    /// [`RnsPoly::zero`], which stays allocation-honest for the reference
    /// kernels.
    pub fn zero_in(
        pool: &PolyPool,
        ctx: &CkksContext,
        level: usize,
        special: bool,
        ntt: bool,
    ) -> Self {
        assert!(level >= 1 && level <= ctx.max_level(), "level out of range");
        assert_eq!(pool.degree(), ctx.degree(), "pool sized for this context");
        let count = level + usize::from(special);
        RnsPoly {
            level,
            special,
            ntt,
            limbs: pool.take_zeroed(count),
        }
    }

    /// A deep copy whose limb buffers come from `pool`.
    pub fn clone_in(&self, pool: &PolyPool) -> Self {
        let mut limbs = pool.take_raw(self.limbs.len());
        for (dst, src) in limbs.iter_mut().zip(&self.limbs) {
            dst.copy_from_slice(src);
        }
        RnsPoly {
            level: self.level,
            special: self.special,
            ntt: self.ntt,
            limbs,
        }
    }

    /// Returns this polynomial's limb buffers to `pool`.
    pub fn recycle(self, pool: &PolyPool) {
        pool.put(self.limbs);
    }

    /// Heap bytes held by the limb buffers.
    pub fn byte_size(&self) -> usize {
        self.limbs.iter().map(|l| l.len() * 8).sum()
    }

    /// Number of active chain limbs.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Whether the special prime limb is attached.
    pub fn has_special(&self) -> bool {
        self.special
    }

    /// Whether the limbs are in NTT domain.
    pub fn is_ntt(&self) -> bool {
        self.ntt
    }

    /// The residues for chain limb `i`.
    pub fn limb(&self, i: usize) -> &[u64] {
        &self.limbs[i]
    }

    /// Mutable access to the residues for chain limb `i`.
    pub fn limb_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.limbs[i]
    }

    /// The special-prime limb.
    ///
    /// # Panics
    ///
    /// Panics if the poly has no special limb.
    pub fn special_limb(&self) -> &[u64] {
        assert!(self.special);
        self.limbs.last().expect("special limb present")
    }

    /// Mutable access to the special-prime limb.
    ///
    /// # Panics
    ///
    /// Panics if the poly has no special limb.
    pub fn special_limb_mut(&mut self) -> &mut [u64] {
        assert!(self.special);
        self.limbs.last_mut().expect("special limb present")
    }

    fn modulus_of(&self, ctx: &CkksContext, idx: usize) -> Modulus {
        if self.special && idx == self.limbs.len() - 1 {
            ctx.special()
        } else {
            ctx.moduli()[idx]
        }
    }

    /// Modulus for limb `idx` of a poly with `count` limbs, the last of
    /// which is the special prime iff `special` — the borrow-free twin of
    /// [`RnsPoly::modulus_of`] for use inside per-limb closures that hold
    /// `&mut` on the limb storage.
    fn modulus_at(ctx: &CkksContext, special: bool, count: usize, idx: usize) -> Modulus {
        if special && idx == count - 1 {
            ctx.special()
        } else {
            ctx.moduli()[idx]
        }
    }

    /// NTT table for limb `idx`; companion of [`RnsPoly::modulus_at`].
    fn table_at(ctx: &CkksContext, special: bool, count: usize, idx: usize) -> &NttTable {
        if special && idx == count - 1 {
            ctx.special_table()
        } else {
            ctx.table(idx)
        }
    }

    /// Builds a polynomial from signed coefficients (applied to every active
    /// modulus), in coefficient domain.
    pub fn from_signed_coeffs(
        ctx: &CkksContext,
        level: usize,
        special: bool,
        coeffs: &[i64],
    ) -> Self {
        assert_eq!(coeffs.len(), ctx.degree());
        let mut p = RnsPoly::zero(ctx, level, special, false);
        for idx in 0..p.limbs.len() {
            let m = p.modulus_of(ctx, idx);
            for (slot, &c) in p.limbs[idx].iter_mut().zip(coeffs) {
                *slot = m.reduce_i64(c);
            }
        }
        p
    }

    /// Builds a polynomial from real coefficients (rounded; magnitudes may
    /// exceed `2^63`), in coefficient domain.
    pub fn from_real_coeffs(
        ctx: &CkksContext,
        level: usize,
        special: bool,
        coeffs: &[f64],
    ) -> Self {
        assert_eq!(coeffs.len(), ctx.degree());
        let mut p = RnsPoly::zero(ctx, level, special, false);
        for idx in 0..p.limbs.len() {
            let m = p.modulus_of(ctx, idx);
            for (slot, &c) in p.limbs[idx].iter_mut().zip(coeffs) {
                *slot = m.reduce_f64(c.round());
            }
        }
        p
    }

    /// Uniformly random polynomial over the basis (NTT domain — uniform in
    /// either domain).
    pub fn uniform(ctx: &CkksContext, level: usize, special: bool, rng: &mut impl Rng) -> Self {
        let mut p = RnsPoly::zero(ctx, level, special, true);
        for idx in 0..p.limbs.len() {
            let m = p.modulus_of(ctx, idx);
            for slot in p.limbs[idx].iter_mut() {
                *slot = rng.gen_range(0..m.value());
            }
        }
        p
    }

    /// Random ternary polynomial (coefficients in {−1, 0, 1}), coefficient
    /// domain. Used for secret keys and encryption randomness.
    pub fn ternary(ctx: &CkksContext, level: usize, special: bool, rng: &mut impl Rng) -> Self {
        let coeffs: Vec<i64> = (0..ctx.degree()).map(|_| rng.gen_range(-1..=1)).collect();
        Self::from_signed_coeffs(ctx, level, special, &coeffs)
    }

    /// Random error polynomial with centered Gaussian coefficients of the
    /// context's standard deviation, coefficient domain.
    pub fn gaussian(ctx: &CkksContext, level: usize, special: bool, rng: &mut impl Rng) -> Self {
        let std = ctx.params().error_std;
        let coeffs: Vec<i64> = (0..ctx.degree())
            .map(|_| {
                // Box–Muller.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                ((-2.0 * u1.ln()).sqrt() * u2.cos() * std).round() as i64
            })
            .collect();
        Self::from_signed_coeffs(ctx, level, special, &coeffs)
    }

    /// Converts to NTT domain (no-op if already there). Limbs transform
    /// independently and fan out across the context's worker threads.
    pub fn to_ntt(&mut self, ctx: &CkksContext) {
        if self.ntt {
            return;
        }
        let (special, count) = (self.special, self.limbs.len());
        let est = par::cost::NTT * ctx.degree() as u64;
        par::for_each(ctx.threads(), est, &mut self.limbs, |idx, limb| {
            Self::table_at(ctx, special, count, idx).forward(limb);
        });
        self.ntt = true;
    }

    /// Converts to coefficient domain (no-op if already there). Limbs
    /// transform independently and fan out across worker threads.
    pub fn to_coeff(&mut self, ctx: &CkksContext) {
        if !self.ntt {
            return;
        }
        let (special, count) = (self.special, self.limbs.len());
        let est = par::cost::NTT * ctx.degree() as u64;
        par::for_each(ctx.threads(), est, &mut self.limbs, |idx, limb| {
            Self::table_at(ctx, special, count, idx).inverse(limb);
        });
        self.ntt = false;
    }

    fn check_compatible(&self, other: &RnsPoly) {
        assert_eq!(self.level, other.level, "level mismatch");
        assert_eq!(self.special, other.special, "basis mismatch");
        assert_eq!(self.ntt, other.ntt, "domain mismatch");
    }

    /// `self += other` (same basis and domain).
    pub fn add_assign(&mut self, ctx: &CkksContext, other: &RnsPoly) {
        self.check_compatible(other);
        for idx in 0..self.limbs.len() {
            let m = self.modulus_of(ctx, idx);
            for (a, &b) in self.limbs[idx].iter_mut().zip(&other.limbs[idx]) {
                *a = m.add(*a, b);
            }
        }
    }

    /// `self -= other` (same basis and domain).
    pub fn sub_assign(&mut self, ctx: &CkksContext, other: &RnsPoly) {
        self.check_compatible(other);
        for idx in 0..self.limbs.len() {
            let m = self.modulus_of(ctx, idx);
            for (a, &b) in self.limbs[idx].iter_mut().zip(&other.limbs[idx]) {
                *a = m.sub(*a, b);
            }
        }
    }

    /// `self *= m` for a scalar `m` (domain-agnostic: a scalar commutes
    /// with the NTT).
    pub fn mul_scalar_assign(&mut self, ctx: &CkksContext, scalar: u64) {
        for idx in 0..self.limbs.len() {
            let m = self.modulus_of(ctx, idx);
            let s = m.reduce(scalar);
            let s_shoup = m.shoup(s);
            for a in self.limbs[idx].iter_mut() {
                *a = m.mul_shoup(*a, s, s_shoup);
            }
        }
    }

    /// `self = −self`.
    pub fn neg_assign(&mut self, ctx: &CkksContext) {
        for idx in 0..self.limbs.len() {
            let m = self.modulus_of(ctx, idx);
            for a in self.limbs[idx].iter_mut() {
                *a = m.neg(*a);
            }
        }
    }

    /// Pointwise product (both operands in NTT domain, same basis).
    ///
    /// # Panics
    ///
    /// Panics if either operand is in coefficient domain.
    pub fn mul(&self, ctx: &CkksContext, other: &RnsPoly) -> RnsPoly {
        self.check_compatible(other);
        assert!(self.ntt, "polynomial product requires NTT domain");
        let mut out = self.clone();
        let (special, count) = (out.special, out.limbs.len());
        let est = par::cost::POINTWISE * ctx.degree() as u64;
        par::for_each(ctx.threads(), est, &mut out.limbs, |idx, limb| {
            let m = Self::modulus_at(ctx, special, count, idx);
            for (a, &b) in limb.iter_mut().zip(&other.limbs[idx]) {
                *a = m.mul(*a, b);
            }
        });
        out
    }

    /// Pointwise `self ∘= other` (both NTT, same basis) — the in-place
    /// twin of [`RnsPoly::mul`] used by the pooled evaluator paths to
    /// avoid materializing a product polynomial.
    ///
    /// # Panics
    ///
    /// Panics if either operand is in coefficient domain.
    pub fn mul_assign(&mut self, ctx: &CkksContext, other: &RnsPoly) {
        self.check_compatible(other);
        assert!(self.ntt, "polynomial product requires NTT domain");
        let (special, count) = (self.special, self.limbs.len());
        let est = par::cost::POINTWISE * ctx.degree() as u64;
        par::for_each(ctx.threads(), est, &mut self.limbs, |idx, limb| {
            let m = Self::modulus_at(ctx, special, count, idx);
            for (a, &b) in limb.iter_mut().zip(&other.limbs[idx]) {
                *a = m.mul(*a, b);
            }
        });
    }

    /// `self · other` accumulated into `acc` (`acc += self ∘ other`),
    /// fused into a single pass per limb — no temporary product polynomial
    /// is materialized.
    pub fn mul_acc(&self, ctx: &CkksContext, other: &RnsPoly, acc: &mut RnsPoly) {
        self.check_compatible(other);
        self.check_compatible(acc);
        assert!(self.ntt, "polynomial product requires NTT domain");
        let (special, count) = (acc.special, acc.limbs.len());
        let est = par::cost::POINTWISE * ctx.degree() as u64;
        par::for_each(ctx.threads(), est, &mut acc.limbs, |idx, limb| {
            let m = Self::modulus_at(ctx, special, count, idx);
            for ((a, &x), &y) in limb.iter_mut().zip(&self.limbs[idx]).zip(&other.limbs[idx]) {
                *a = m.add(*a, m.mul(x, y));
            }
        });
    }

    /// Like [`RnsPoly::mul_acc`], with `key` a full-basis key polynomial
    /// (all `L` chain limbs plus `P`): `self`'s chain limbs pair with
    /// `key`'s first limbs and `self`'s special limb with `key`'s last.
    /// This lets key switching skip the per-digit
    /// [`RnsPoly::restrict_for_keyswitch`] clone of every key polynomial.
    pub fn mul_acc_restricted(&self, ctx: &CkksContext, key: &RnsPoly, acc: &mut RnsPoly) {
        self.check_compatible(acc);
        assert!(
            self.ntt && key.ntt,
            "polynomial product requires NTT domain"
        );
        assert!(
            self.special && key.special,
            "key switching runs on the extended basis"
        );
        assert_eq!(key.level, ctx.max_level(), "key polys carry the full basis");
        assert!(self.level <= key.level);
        let (special, count) = (acc.special, acc.limbs.len());
        let est = par::cost::POINTWISE * ctx.degree() as u64;
        par::for_each(ctx.threads(), est, &mut acc.limbs, |idx, limb| {
            let m = Self::modulus_at(ctx, special, count, idx);
            let key_limb = if special && idx == count - 1 {
                key.limbs.last().expect("special limb")
            } else {
                &key.limbs[idx]
            };
            for ((a, &x), &y) in limb.iter_mut().zip(&self.limbs[idx]).zip(key_limb) {
                *a = m.add(*a, m.mul(x, y));
            }
        });
    }

    /// Drops the basis down to `new_level` chain limbs (and drops the
    /// special limb if present) **without** scaling — this is `modswitch`'s
    /// core, and is also used to align key limbs with a ciphertext's basis.
    pub fn drop_to_level(&mut self, new_level: usize) {
        assert!(new_level >= 1 && new_level <= self.level);
        self.limbs.truncate(new_level);
        self.level = new_level;
        self.special = false;
    }

    /// [`RnsPoly::drop_to_level`] with the truncated limb buffers returned
    /// to `pool` instead of freed.
    pub fn drop_to_level_in(&mut self, new_level: usize, pool: &PolyPool) {
        assert!(new_level >= 1 && new_level <= self.level);
        pool.put(self.limbs.drain(new_level..));
        self.level = new_level;
        self.special = false;
    }

    /// Restricts a full-basis key polynomial to the first `level` chain
    /// limbs plus the special limb (key polys always carry `P`).
    pub fn restrict_for_keyswitch(&self, level: usize) -> RnsPoly {
        assert!(self.special, "key polynomials carry the special limb");
        assert!(level <= self.level);
        let mut limbs: Vec<Vec<u64>> = self.limbs[..level].to_vec();
        limbs.push(self.limbs.last().expect("special limb").clone());
        RnsPoly {
            level,
            special: true,
            ntt: self.ntt,
            limbs,
        }
    }

    /// Exact RNS rescale: divides by the last chain prime `q_{l-1}` with
    /// rounding, dropping one level. Input and output in NTT domain.
    ///
    /// Computes `(x − [x]_{q_last}) · q_last^{-1} mod q_i` per remaining limb.
    ///
    /// # Panics
    ///
    /// Panics if the poly is at level 1, carries the special limb, or is in
    /// coefficient domain.
    pub fn rescale_last(&mut self, ctx: &CkksContext) {
        self.rescale_last_impl(ctx, None);
    }

    /// [`RnsPoly::rescale_last`] with the dropped limb buffer returned to
    /// `pool` instead of freed.
    pub fn rescale_last_in(&mut self, ctx: &CkksContext, pool: &PolyPool) {
        self.rescale_last_impl(ctx, Some(pool));
    }

    fn rescale_last_impl(&mut self, ctx: &CkksContext, pool: Option<&PolyPool>) {
        assert!(self.level >= 2, "cannot rescale below level 1");
        assert!(!self.special, "rescale before dropping the special limb");
        assert!(self.ntt, "ciphertext polys live in NTT domain");
        let j = self.level - 1;
        // Bring the dropped limb to coefficient domain to read residues.
        let mut last = self.limbs.pop().expect("limb");
        ctx.table(j).inverse(&mut last);
        let qj = ctx.moduli()[j];
        let half = qj.value() / 2;
        {
            let last = &last;
            let est = par::cost::NTT * ctx.degree() as u64;
            par::for_each_with_scratch(ctx.threads(), est, &mut self.limbs, |i, limb, corr| {
                let mi = ctx.moduli()[i];
                // Centered lift of [x]_{q_j} reduced mod q_i, then NTT under
                // q_i (built in the worker's reused scratch buffer).
                corr.clear();
                corr.extend(last.iter().map(|&v| {
                    // center to (−q_j/2, q_j/2] to keep the subtraction small
                    if v > half {
                        mi.sub(0, mi.reduce(qj.value() - v))
                    } else {
                        mi.reduce(v)
                    }
                }));
                ctx.table(i).forward(corr);
                let (inv, inv_shoup) = ctx.rescale_inv(j, i);
                for (a, &c) in limb.iter_mut().zip(corr.iter()) {
                    *a = mi.mul_shoup(mi.sub(*a, c), inv, inv_shoup);
                }
            });
        }
        if let Some(pool) = pool {
            pool.put([last]);
        }
        self.level = j;
    }

    /// Divides by the special prime `P` with rounding, dropping the special
    /// limb (the final step of key switching). Input NTT, output NTT.
    ///
    /// # Panics
    ///
    /// Panics if the poly lacks the special limb or is in coefficient domain.
    pub fn rescale_special(&mut self, ctx: &CkksContext) {
        self.rescale_special_impl(ctx, None);
    }

    /// [`RnsPoly::rescale_special`] with the dropped limb buffer returned
    /// to `pool` instead of freed.
    pub fn rescale_special_in(&mut self, ctx: &CkksContext, pool: &PolyPool) {
        self.rescale_special_impl(ctx, Some(pool));
    }

    fn rescale_special_impl(&mut self, ctx: &CkksContext, pool: Option<&PolyPool>) {
        assert!(self.special, "no special limb to drop");
        assert!(self.ntt, "ciphertext polys live in NTT domain");
        let mut last = self.limbs.pop().expect("limb");
        ctx.special_table().inverse(&mut last);
        let p = ctx.special();
        let half = p.value() / 2;
        {
            let last = &last;
            let est = par::cost::NTT * ctx.degree() as u64;
            par::for_each_with_scratch(ctx.threads(), est, &mut self.limbs, |i, limb, corr| {
                let mi = ctx.moduli()[i];
                corr.clear();
                corr.extend(last.iter().map(|&v| {
                    if v > half {
                        mi.sub(0, mi.reduce(p.value() - v))
                    } else {
                        mi.reduce(v)
                    }
                }));
                ctx.table(i).forward(corr);
                let (inv, inv_shoup) = ctx.special_inv(i);
                for (a, &c) in limb.iter_mut().zip(corr.iter()) {
                    *a = mi.mul_shoup(mi.sub(*a, c), inv, inv_shoup);
                }
            });
        }
        if let Some(pool) = pool {
            pool.put([last]);
        }
        self.special = false;
    }

    /// Applies the Galois automorphism `X ↦ X^g` (odd `g`), in coefficient
    /// domain internally; preserves the input domain.
    pub fn automorphism(&mut self, ctx: &CkksContext, g: usize) {
        self.automorphism_impl(ctx, g, None);
    }

    /// [`RnsPoly::automorphism`] with the per-limb target buffers checked
    /// out of `pool` and the replaced source buffers returned to it.
    pub fn automorphism_in(&mut self, ctx: &CkksContext, g: usize, pool: &PolyPool) {
        self.automorphism_impl(ctx, g, Some(pool));
    }

    fn automorphism_impl(&mut self, ctx: &CkksContext, g: usize, pool: Option<&PolyPool>) {
        let n = ctx.degree();
        assert!(g % 2 == 1, "Galois element must be odd");
        let was_ntt = self.ntt;
        self.to_coeff(ctx);
        for idx in 0..self.limbs.len() {
            let m = self.modulus_of(ctx, idx);
            let src = &self.limbs[idx];
            // For odd g the map i ↦ (i·g mod 2N) folded into 0..N is a
            // bijection, so every slot of `dst` is written exactly once and
            // an unzeroed pooled buffer is safe.
            let mut dst = match pool {
                Some(p) => p.take_raw(1).pop().expect("one buffer"),
                None => vec![0u64; n],
            };
            for (i, &coeff) in src.iter().enumerate() {
                let target = (i * g) % (2 * n);
                if target < n {
                    dst[target] = coeff;
                } else {
                    dst[target - n] = m.neg(coeff);
                }
            }
            let old = std::mem::replace(&mut self.limbs[idx], dst);
            if let Some(p) = pool {
                p.put([old]);
            }
        }
        if was_ntt {
            self.to_ntt(ctx);
        }
    }

    /// The exact residues of coefficient `k` across the chain limbs
    /// (coefficient domain required).
    pub fn coeff_residues(&self, k: usize) -> Vec<u64> {
        assert!(!self.ntt, "need coefficient domain");
        self.limbs[..self.level].iter().map(|l| l[k]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{CkksContext, CkksParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_ctx() -> CkksContext {
        CkksContext::new(CkksParams {
            poly_degree: 64,
            max_level: 3,
            modulus_bits: 40,
            special_bits: 41,
            error_std: 3.2,
            threads: 1,
        })
    }

    #[test]
    fn ntt_roundtrip_preserves_poly() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = RnsPoly::uniform(&ctx, 2, false, &mut rng);
        let orig = p.clone();
        p.to_coeff(&ctx);
        p.to_ntt(&ctx);
        assert_eq!(p, orig);
    }

    #[test]
    fn add_neg_cancels() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let p = RnsPoly::uniform(&ctx, 3, true, &mut rng);
        let mut q = p.clone();
        q.neg_assign(&ctx);
        q.add_assign(&ctx, &p);
        assert_eq!(q, RnsPoly::zero(&ctx, 3, true, true));
    }

    #[test]
    fn mul_matches_coefficient_convolution() {
        let ctx = tiny_ctx();
        // (1 + X) · (1 − X) = 1 − X².
        let mut a = vec![0i64; 64];
        a[0] = 1;
        a[1] = 1;
        let mut b = vec![0i64; 64];
        b[0] = 1;
        b[1] = -1;
        let mut pa = RnsPoly::from_signed_coeffs(&ctx, 1, false, &a);
        let mut pb = RnsPoly::from_signed_coeffs(&ctx, 1, false, &b);
        pa.to_ntt(&ctx);
        pb.to_ntt(&ctx);
        let mut prod = pa.mul(&ctx, &pb);
        prod.to_coeff(&ctx);
        let m = ctx.moduli()[0];
        assert_eq!(prod.limb(0)[0], 1);
        assert_eq!(prod.limb(0)[1], 0);
        assert_eq!(prod.limb(0)[2], m.neg(1));
    }

    #[test]
    fn mul_scalar_matches_per_coefficient_multiply() {
        let ctx = tiny_ctx();
        let coeffs: Vec<i64> = (0..64).map(|i| (i as i64 % 17) - 8).collect();
        let mut p = RnsPoly::from_signed_coeffs(&ctx, 2, false, &coeffs);
        p.mul_scalar_assign(&ctx, 12345);
        for (i, &c) in coeffs.iter().enumerate() {
            for limb in 0..2 {
                let m = ctx.moduli()[limb];
                assert_eq!(
                    m.center(p.limb(limb)[i]),
                    c * 12345,
                    "limb {limb} coefficient {i}"
                );
            }
        }
        // A scalar commutes with the NTT: multiplying in evaluation form
        // then returning to coefficients gives the same polynomial.
        let mut q = RnsPoly::from_signed_coeffs(&ctx, 2, false, &coeffs);
        q.to_ntt(&ctx);
        q.mul_scalar_assign(&ctx, 12345);
        q.to_coeff(&ctx);
        assert_eq!(q, p);
    }

    #[test]
    fn rescale_divides_by_dropped_prime() {
        let ctx = tiny_ctx();
        // Constant polynomial with value q_1 · 12345 rescales to ≈ 12345.
        let q1 = ctx.moduli()[1].value();
        let v = q1 as f64 * 12345.0;
        let coeffs: Vec<f64> = std::iter::once(v)
            .chain(std::iter::repeat(0.0))
            .take(64)
            .collect();
        let mut p = RnsPoly::from_real_coeffs(&ctx, 2, false, &coeffs);
        p.to_ntt(&ctx);
        p.rescale_last(&ctx);
        p.to_coeff(&ctx);
        assert_eq!(p.level(), 1);
        let got = ctx.moduli()[0].center(p.limb(0)[0]);
        assert!((got - 12345).abs() <= 1, "rescale rounding off by {got}");
    }

    #[test]
    fn automorphism_identity_and_inverse() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let p = RnsPoly::uniform(&ctx, 2, false, &mut rng);
        let mut q = p.clone();
        q.automorphism(&ctx, 1);
        assert_eq!(q, p);
        // g · g⁻¹ ≡ 1 (mod 2N): applying both returns the original.
        let n2 = 2 * ctx.degree();
        let g = 5usize;
        // Find inverse of 5 mod 128.
        let g_inv = (1..n2).step_by(2).find(|&h| (g * h) % n2 == 1).unwrap();
        let mut r = p.clone();
        r.automorphism(&ctx, g);
        r.automorphism(&ctx, g_inv);
        assert_eq!(r, p);
    }

    #[test]
    fn automorphism_cubes_monomial_with_sign() {
        let ctx = tiny_ctx();
        let n = ctx.degree();
        // p = X^(N−1); X ↦ X^3 gives X^(3N−3) = X^(2N) · X^(N−3) = X^(N−3)
        // (X^N ≡ −1 twice cancels) — check sign bookkeeping.
        let mut coeffs = vec![0i64; n];
        coeffs[n - 1] = 1;
        let mut p = RnsPoly::from_signed_coeffs(&ctx, 1, false, &coeffs);
        p.automorphism(&ctx, 3);
        let m = ctx.moduli()[0];
        for (i, &c) in p.limb(0).iter().enumerate() {
            if i == n - 3 {
                assert_eq!(c, 1, "X^(N−3) coefficient");
            } else {
                assert_eq!(m.center(c), 0, "coefficient {i}");
            }
        }
    }

    #[test]
    fn mul_acc_is_fused_and_allocation_free() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(7);
        let a = RnsPoly::uniform(&ctx, 2, false, &mut rng);
        let b = RnsPoly::uniform(&ctx, 2, false, &mut rng);
        let mut acc = RnsPoly::uniform(&ctx, 2, false, &mut rng);
        // Reference: materialize the product, then add.
        let mut expect = acc.clone();
        expect.add_assign(&ctx, &a.mul(&ctx, &b));
        // The fused path must write into the existing limb storage — record
        // each limb's data pointer and capacity and check nothing moved.
        let before: Vec<(*const u64, usize)> = (0..acc.limbs.len())
            .map(|i| (acc.limbs[i].as_ptr(), acc.limbs[i].capacity()))
            .collect();
        a.mul_acc(&ctx, &b, &mut acc);
        let after: Vec<(*const u64, usize)> = (0..acc.limbs.len())
            .map(|i| (acc.limbs[i].as_ptr(), acc.limbs[i].capacity()))
            .collect();
        assert_eq!(acc, expect, "fused mul_acc result");
        assert_eq!(before, after, "mul_acc reallocated limb storage");
    }

    #[test]
    fn mul_acc_restricted_matches_restrict_then_mul_acc() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(8);
        // Key poly on the full basis (all L chain limbs + P); operand and
        // accumulator on a lower level plus the special limb.
        let key = RnsPoly::uniform(&ctx, 3, true, &mut rng);
        let x = RnsPoly::uniform(&ctx, 2, true, &mut rng);
        let mut direct = RnsPoly::uniform(&ctx, 2, true, &mut rng);
        let mut via_restrict = direct.clone();
        x.mul_acc(&ctx, &key.restrict_for_keyswitch(2), &mut via_restrict);
        x.mul_acc_restricted(&ctx, &key, &mut direct);
        assert_eq!(direct, via_restrict);
    }

    #[test]
    fn restrict_keeps_special_limb() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let p = RnsPoly::uniform(&ctx, 3, true, &mut rng);
        let r = p.restrict_for_keyswitch(2);
        assert_eq!(r.level(), 2);
        assert!(r.has_special());
        assert_eq!(r.special_limb(), p.special_limb());
        assert_eq!(r.limb(1), p.limb(1));
    }

    #[test]
    fn gaussian_coeffs_are_small() {
        let ctx = tiny_ctx();
        let mut rng = StdRng::seed_from_u64(5);
        let p = RnsPoly::gaussian(&ctx, 1, false, &mut rng);
        let m = ctx.moduli()[0];
        for &c in p.limb(0) {
            assert!(m.center(c).abs() < 40, "gaussian sample too large");
        }
    }
}
