//! Compiler diagnostics: lint findings and translation-validation verdicts.
//!
//! Analysis passes (see the `fhe-analysis` crate) attach [`Finding`]s to the
//! running [`PassCx`](crate::pipeline::PassCx); the pipeline surfaces them in
//! the [`CompileReport`](crate::pipeline::CompileReport) so every harness —
//! the `lint` CLI, the benchmark tables, the fuzz oracle — sees the same
//! diagnostics without re-running the analyses.

use std::fmt;

use crate::op::ValueId;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational only.
    Note,
    /// Probably wasteful or suspicious, but legal and sound.
    Warning,
    /// Soundness is at risk (e.g. a possible message overflow).
    Error,
}

impl Severity {
    /// Lowercase label, as rendered in diagnostics (`error[F001]: …`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One diagnostic produced by an analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Stable lint code (`"F001"` … `"F005"`, `"F000"` for a
    /// translation-validation mismatch).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description of the problem.
    pub message: String,
    /// The value the finding anchors to, if it is op-local ( `None` for
    /// whole-program findings such as an over-provisioned modulus).
    pub op: Option<ValueId>,
}

impl Finding {
    /// A program-level finding (no anchor op).
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Finding {
            code,
            severity,
            message: message.into(),
            op: None,
        }
    }

    /// Anchors the finding to a value (builder style).
    #[must_use]
    pub fn at(mut self, op: ValueId) -> Self {
        self.op = Some(op);
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(op) = self.op {
            write!(f, " (at {op})")?;
        }
        Ok(())
    }
}

/// Result of the translation-validation pass, stored on the pass context's
/// blackboard and surfaced in the compile report.
#[derive(Debug, Clone, PartialEq)]
pub struct TvVerdict {
    /// Whether the scheduled program was proven equal to the source modulo
    /// inserted scale management.
    pub validated: bool,
    /// On failure, the first structural mismatch.
    pub detail: Option<String>,
}

impl TvVerdict {
    /// A passing verdict.
    pub fn pass() -> Self {
        TvVerdict {
            validated: true,
            detail: None,
        }
    }

    /// A failing verdict with the first mismatch.
    pub fn fail(detail: impl Into<String>) -> Self {
        TvVerdict {
            validated: false,
            detail: Some(detail.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_seriousness() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn finding_renders_code_and_anchor() {
        let f = Finding::new("F002", Severity::Warning, "dead rescale").at(ValueId(3));
        assert_eq!(f.to_string(), "warning[F002]: dead rescale (at %3)");
        let g = Finding::new("F005", Severity::Warning, "over-provisioned");
        assert_eq!(g.to_string(), "warning[F005]: over-provisioned");
    }
}
