//! Shared forward scale-management legalizer.
//!
//! Implements EVA-style forward waterline analysis (§3.1): inputs enter at
//! the waterline scale; multiplications rescale while the result stays above
//! the waterline; `modswitch`/`upscale` are inserted to align levels and
//! scales at binary ops. A [`ForwardPlan`] additionally forces *downscales*
//! (upscale-to-boundary + eager rescales) at chosen program points — the
//! knob Hecate's exploration turns; EVA is the empty plan.

use std::collections::HashMap;

use fhe_ir::{
    CompileParams, Frac, InputSpec, Op, Program, ProgramEditor, ScheduledProgram, ValueId,
};

/// Forced extra scale management on use edges. For each (op, operand slot)
/// edge, a choice `c` means: upscale the operand by `c · W/2` bits, then
/// rescale while the scale stays above the waterline. `c = 0` (everywhere)
/// is exactly EVA. This is the knob Hecate's exploration turns: upscaling
/// an operand lets the following multiplication land on a modulus boundary
/// so the EVA rescaling rule fires earlier, trading upscales for lower
/// levels downstream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForwardPlan {
    /// Per (op index, slot) edge — index `2·op + slot` — the upscale choice.
    pub edge: Vec<u8>,
}

impl ForwardPlan {
    /// The maximum meaningful per-edge choice (`4W` bits of upscale).
    pub const MAX_CHOICE: u8 = 8;

    /// The empty plan (pure EVA behaviour) for a program of `n` values.
    pub fn empty(n: usize) -> Self {
        ForwardPlan {
            edge: vec![0; 2 * n],
        }
    }

    /// Sets the choice for the edge feeding `op`'s operand `slot`.
    pub fn set(&mut self, op: ValueId, slot: usize, choice: u8) {
        self.edge[2 * op.index() + slot] = choice;
    }

    fn get(&self, op: ValueId, slot: usize) -> u8 {
        self.edge.get(2 * op.index() + slot).copied().unwrap_or(0)
    }
}

/// Legalization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegalizeError {
    /// The program needs more modulus than `params.max_level` provides.
    ExceedsMaxLevel {
        /// The level the inputs would need.
        required: u32,
    },
}

impl std::fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LegalizeError::ExceedsMaxLevel { required } => {
                write!(
                    f,
                    "program requires input level {required} beyond max_level"
                )
            }
        }
    }
}

impl std::error::Error for LegalizeError {}

/// Ciphertext state in the forward walk: scale plus accumulated level drops
/// (level itself is only known once the input level is fixed at the end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FwdState {
    scale_bits: Frac,
    drops: u32,
}

struct Legalizer<'p> {
    params: CompileParams,
    ed: ProgramEditor<'p>,
    state: HashMap<ValueId, FwdState>,
    modswitched: HashMap<(ValueId, u32), ValueId>,
    upscaled: HashMap<(ValueId, Frac), ValueId>,
    edge_adapted: HashMap<(ValueId, u8), ValueId>,
}

/// Runs the forward legalizer under a plan, producing a scheduled program.
///
/// # Errors
///
/// Fails only when the required input level exceeds `params.max_level`.
pub fn legalize(
    program: &Program,
    params: &CompileParams,
    plan: &ForwardPlan,
) -> Result<ScheduledProgram, LegalizeError> {
    let mut lg = Legalizer {
        params: *params,
        ed: ProgramEditor::new(program),
        state: HashMap::new(),
        modswitched: HashMap::new(),
        upscaled: HashMap::new(),
        edge_adapted: HashMap::new(),
    };
    let waterline = params.waterline();
    let rescale = params.rescale();

    for id in program.ids() {
        if program.is_plain(id) {
            lg.ed.emit(id);
            continue;
        }
        let (new, st) = match program.op(id).clone() {
            Op::Input { .. } => (
                lg.ed.emit(id),
                FwdState {
                    scale_bits: waterline,
                    drops: 0,
                },
            ),
            Op::Add(a, b) | Op::Sub(a, b) => {
                let pa = program.is_cipher(a);
                let pb = program.is_cipher(b);
                match (pa, pb) {
                    (true, true) => {
                        let ea = lg.edge(id, 0, a, plan);
                        let eb = lg.edge(id, 1, b, plan);
                        let (na, nb, st) = lg.align(ea, eb);
                        (lg.ed.emit_with(id, &[na, nb]), st)
                    }
                    (true, false) => {
                        let na = lg.edge(id, 0, a, plan);
                        let nb = lg.ed.map_operand(b);
                        let st = lg.state[&na];
                        (lg.ed.emit_with(id, &[na, nb]), st)
                    }
                    (false, true) => {
                        let na = lg.ed.map_operand(a);
                        let nb = lg.edge(id, 1, b, plan);
                        let st = lg.state[&nb];
                        (lg.ed.emit_with(id, &[na, nb]), st)
                    }
                    (false, false) => unreachable!("plain handled above"),
                }
            }
            Op::Mul(a, b) => {
                let pa = program.is_cipher(a);
                let pb = program.is_cipher(b);
                let (new, st) = match (pa, pb) {
                    (true, true) => {
                        let ea = lg.edge(id, 0, a, plan);
                        let eb = lg.edge(id, 1, b, plan);
                        let (na, nb, _) = lg.align_levels(ea, eb);
                        let sa = lg.state[&na].scale_bits;
                        let sb = lg.state[&nb].scale_bits;
                        let drops = lg.state[&na].drops;
                        (
                            lg.ed.emit_with(id, &[na, nb]),
                            FwdState {
                                scale_bits: sa + sb,
                                drops,
                            },
                        )
                    }
                    (true, false) | (false, true) => {
                        let (cipher, slot) = if pa { (a, 0) } else { (b, 1) };
                        let nc = lg.edge(id, slot, cipher, plan);
                        let st = lg.state[&nc];
                        let mapped = if pa {
                            [nc, lg.ed.map_operand(b)]
                        } else {
                            [lg.ed.map_operand(a), nc]
                        };
                        (
                            lg.ed.emit_with(id, &mapped),
                            FwdState {
                                scale_bits: st.scale_bits + waterline,
                                drops: st.drops,
                            },
                        )
                    }
                    (false, false) => unreachable!("plain handled above"),
                };
                // EVA's rule: rescale while the result stays ≥ waterline.
                let mut new = new;
                let mut st = st;
                while st.scale_bits - rescale >= waterline {
                    new = lg.ed.push(Op::Rescale(new));
                    st = FwdState {
                        scale_bits: st.scale_bits - rescale,
                        drops: st.drops + 1,
                    };
                    lg.state.insert(new, st);
                    lg.ed.set_mapping(id, new);
                }
                (new, st)
            }
            Op::Neg(a) | Op::Rotate(a, _) => {
                let na = lg.edge(id, 0, a, plan);
                let st = lg.state[&na];
                (lg.ed.emit_with(id, &[na]), st)
            }
            Op::Rescale(_) | Op::ModSwitch(_) | Op::Upscale(..) => {
                panic!("forward legalizer expects a program without scale management ops")
            }
            Op::Const { .. } => unreachable!("consts are plain"),
        };
        lg.state.insert(new, st);
    }

    // The input level must cover scale + drops at every point.
    let required = lg
        .state
        .values()
        .map(|st| st.drops as i128 + (st.scale_bits / rescale).ceil())
        .max()
        .unwrap_or(1)
        .max(1) as u32;
    if required > params.max_level {
        return Err(LegalizeError::ExceedsMaxLevel { required });
    }
    let program_out = lg.ed.finish();
    let n_inputs = program_out.inputs().len();
    Ok(ScheduledProgram {
        program: program_out,
        params: *params,
        inputs: vec![
            InputSpec {
                scale_bits: waterline,
                level: required
            };
            n_inputs
        ],
    })
}

impl<'p> Legalizer<'p> {
    /// Applies the plan's edge choice to the operand `src` of op `id`:
    /// upscale by `c·W/2` bits, then rescale while above the waterline.
    /// Returns the (possibly adapted) destination id. Chains are shared per
    /// (operand, choice).
    fn edge(&mut self, id: ValueId, slot: usize, src: ValueId, plan: &ForwardPlan) -> ValueId {
        let cur = self.ed.map_operand(src);
        let choice = plan.get(id, slot);
        if choice == 0 {
            return cur;
        }
        if let Some(&done) = self.edge_adapted.get(&(cur, choice)) {
            return done;
        }
        let waterline = self.params.waterline();
        let rescale = self.params.rescale();
        let delta = Frac::from(choice as i32) * waterline / Frac::from(2);
        let mut st = self.state[&cur];
        let mut out = self.ed.push(Op::Upscale(cur, delta));
        st = FwdState {
            scale_bits: st.scale_bits + delta,
            drops: st.drops,
        };
        self.state.insert(out, st);
        while st.scale_bits - rescale >= waterline {
            out = self.ed.push(Op::Rescale(out));
            st = FwdState {
                scale_bits: st.scale_bits - rescale,
                drops: st.drops + 1,
            };
            self.state.insert(out, st);
        }
        self.edge_adapted.insert((cur, choice), out);
        out
    }

    /// Aligns levels (drops) of two cipher operands via `modswitch`.
    /// Operands are destination ids (already edge-adapted).
    fn align_levels(&mut self, na: ValueId, nb: ValueId) -> (ValueId, ValueId, u32) {
        let da = self.state[&na].drops;
        let db = self.state[&nb].drops;
        let target = da.max(db);
        let na = self.modswitch_to(na, target);
        let nb = self.modswitch_to(nb, target);
        (na, nb, target)
    }

    /// Aligns both levels and scales (for additions): `modswitch` then
    /// `upscale` the smaller-scale side. Operands are destination ids.
    fn align(&mut self, na: ValueId, nb: ValueId) -> (ValueId, ValueId, FwdState) {
        let (mut na, mut nb, _) = self.align_levels(na, nb);
        let sa = self.state[&na].scale_bits;
        let sb = self.state[&nb].scale_bits;
        if sa < sb {
            na = self.upscale_to(na, sb);
        } else if sb < sa {
            nb = self.upscale_to(nb, sa);
        }
        let st = self.state[&na];
        (na, nb, st)
    }

    fn modswitch_to(&mut self, start: ValueId, target: u32) -> ValueId {
        let mut st = self.state[&start];
        if st.drops == target {
            return start;
        }
        if let Some(&done) = self.modswitched.get(&(start, target)) {
            return done;
        }
        let mut cur = start;
        while st.drops < target {
            cur = self.ed.push(Op::ModSwitch(cur));
            st = FwdState {
                scale_bits: st.scale_bits,
                drops: st.drops + 1,
            };
            self.state.insert(cur, st);
        }
        self.modswitched.insert((start, target), cur);
        cur
    }

    fn upscale_to(&mut self, cur: ValueId, target_scale: Frac) -> ValueId {
        let st = self.state[&cur];
        debug_assert!(st.scale_bits < target_scale);
        if let Some(&done) = self.upscaled.get(&(cur, target_scale)) {
            return done;
        }
        let up = self.ed.push(Op::Upscale(cur, target_scale - st.scale_bits));
        self.state.insert(
            up,
            FwdState {
                scale_bits: target_scale,
                drops: st.drops,
            },
        );
        self.upscaled.insert((cur, target_scale), up);
        up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fhe_ir::{Builder, CostModel};

    fn fig2a() -> Program {
        let b = Builder::new("fig2a", 8);
        let x = b.input("x");
        let y = b.input("y");
        let q = x.clone() * x.clone() * x * (y.clone() * y.clone() + y);
        b.finish(vec![q])
    }

    #[test]
    fn empty_plan_reproduces_eva_fig2b() {
        let p = fig2a();
        let params = CompileParams::new(20);
        let s = legalize(&p, &params, &ForwardPlan::empty(p.num_ops())).unwrap();
        let map = s.validate().expect("EVA schedule must be legal");
        // Fig. 2b: inputs at level 2, one rescale (after q), one upscale
        // (on y before the add), no modswitches.
        assert_eq!(map.max_level(), 2);
        assert_eq!(s.scale_management_counts(), (1, 0, 1));
        // Total cost ≈ 390 hundreds of µs.
        let cost = CostModel::paper_table3().program_cost(&s.program, &map) / 100.0;
        assert!(
            (380.0..400.0).contains(&cost),
            "EVA cost {cost} should be ≈390"
        );
    }

    #[test]
    fn edge_plan_reproduces_fig2c_improvement() {
        // The paper's Fig. 2c plan: upscale x,y by W before squaring (so the
        // squares rescale early), and rescale x,y down a level before the
        // level-1 multiplications. Cost ≈ 353 (hundreds of µs).
        let p = fig2a();
        let params = CompileParams::new(20);
        let mut plan = ForwardPlan::empty(p.num_ops());
        let x2 = fhe_ir::ValueId(2);
        let x3 = fhe_ir::ValueId(3);
        let y2 = fhe_ir::ValueId(4);
        let s_add = fhe_ir::ValueId(5);
        plan.set(x2, 0, 2); // x·(+W)
        plan.set(x2, 1, 2);
        plan.set(y2, 0, 2);
        plan.set(y2, 1, 2);
        plan.set(x3, 1, 6); // x +3W then rescale → level 1 (slot 1: x²·x)
        plan.set(s_add, 1, 6); // y likewise for the addition
        let s = legalize(&p, &params, &plan).unwrap();
        let map = s.validate().unwrap();
        assert_eq!(map.max_level(), 2);
        let cost = CostModel::paper_table3().program_cost(&s.program, &map) / 100.0;
        assert!(
            (330.0..380.0).contains(&cost),
            "fig2c-style plan cost {cost} should be ≈353 and beat EVA's 390"
        );
    }

    #[test]
    fn deep_chain_needs_levels() {
        let b = Builder::new("deep", 4);
        let x = b.input("x");
        let mut acc = x;
        for _ in 0..3 {
            acc = acc.clone() * acc;
        }
        let p = b.finish(vec![acc]);
        let params = CompileParams::new(40);
        let s = legalize(&p, &params, &ForwardPlan::empty(p.num_ops())).unwrap();
        let map = s.validate().unwrap();
        assert!(map.max_level() >= 3);
    }

    #[test]
    fn max_level_exceeded_reported() {
        let b = Builder::new("deep", 4);
        let x = b.input("x");
        let mut acc = x;
        for _ in 0..8 {
            acc = acc.clone() * acc;
        }
        let p = b.finish(vec![acc]);
        let mut params = CompileParams::new(50);
        params.max_level = 4;
        match legalize(&p, &params, &ForwardPlan::empty(p.num_ops())) {
            Err(LegalizeError::ExceedsMaxLevel { required }) => assert!(required > 4),
            other => panic!("expected level error, got {other:?}"),
        }
    }

    #[test]
    fn mixed_plain_programs_legalize() {
        let b = Builder::new("mix", 16);
        let x = b.input("x");
        let k = b.constant(vec![0.5; 16]);
        let e = (x.clone() * k + x.clone().rotate(2)) * x.clone() - x;
        let p = b.finish(vec![e]);
        for wl in [15, 20, 30, 40, 50] {
            let params = CompileParams::new(wl);
            let s = legalize(&p, &params, &ForwardPlan::empty(p.num_ops())).unwrap();
            s.validate().unwrap_or_else(|e| panic!("W={wl}: {e:?}"));
        }
    }

    #[test]
    fn modswitch_alignment_for_unbalanced_depths() {
        let b = Builder::new("unbal", 8);
        let x = b.input("x");
        let y = b.input("y");
        // x⁴·x⁴ forces rescales; adding y afterwards needs modswitch+upscale.
        let x2 = x.clone() * x.clone();
        let x4 = x2.clone() * x2.clone();
        let out = x4 + y;
        let p = b.finish(vec![out]);
        let params = CompileParams::new(40);
        let s = legalize(&p, &params, &ForwardPlan::empty(p.num_ops())).unwrap();
        s.validate().unwrap();
        let (_, ms, _) = s.scale_management_counts();
        assert!(ms >= 1, "expected modswitch to align y");
    }
}
