//! Scheduled programs and the RNS-CKKS legality validator.
//!
//! A *scheduled* program is the output of a scale-management compiler: the
//! original arithmetic plus inserted `rescale`/`modswitch`/`upscale` ops and
//! a scale/level assignment for every ciphertext input. From that seed the
//! scale and level of every intermediate value is fully determined by the
//! operation semantics of Table 2; [`ScheduledProgram::validate`] recomputes
//! them and checks every constraint. This validator is the shared
//! correctness oracle for every compiler in the workspace.

use std::fmt;

use crate::op::{Op, ValueId};
use crate::params::CompileParams;
use crate::program::Program;
use crate::Frac;

/// Scale and level a ciphertext input is encrypted at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputSpec {
    /// log₂ of the encoding scale.
    pub scale_bits: Frac,
    /// Level (number of modulus limbs) of the fresh ciphertext.
    pub level: u32,
}

/// A compiled program: arithmetic + scale management + input encodings.
#[derive(Debug, Clone)]
pub struct ScheduledProgram {
    /// The rewritten program (contains scale-management ops).
    pub program: Program,
    /// Parameters the program was compiled against.
    pub params: CompileParams,
    /// Per-input scale/level, parallel to `program.inputs()`.
    pub inputs: Vec<InputSpec>,
}

/// Scale/level derived for every ciphertext value of a scheduled program.
#[derive(Debug, Clone)]
pub struct ScaleMap {
    scale_bits: Vec<Option<Frac>>,
    level: Vec<Option<u32>>,
}

impl ScaleMap {
    /// The scale (log₂ bits) of ciphertext value `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a plaintext value.
    pub fn scale_bits(&self, id: ValueId) -> Frac {
        self.scale_bits[id.index()].expect("scale of a plaintext value")
    }

    /// The level of ciphertext value `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a plaintext value.
    pub fn level(&self, id: ValueId) -> u32 {
        self.level[id.index()].expect("level of a plaintext value")
    }

    /// Scale if `id` is a ciphertext, else `None`.
    pub fn try_scale_bits(&self, id: ValueId) -> Option<Frac> {
        self.scale_bits[id.index()]
    }

    /// Level if `id` is a ciphertext, else `None`.
    pub fn try_level(&self, id: ValueId) -> Option<u32> {
        self.level[id.index()]
    }

    /// The highest level of any ciphertext value (the modulus level a key
    /// must provide).
    pub fn max_level(&self) -> u32 {
        self.level.iter().flatten().copied().max().unwrap_or(1)
    }
}

/// A violated RNS-CKKS constraint found by [`ScheduledProgram::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// `inputs` length differs from the program's input count.
    InputArity {
        /// Number of program inputs.
        expected: usize,
        /// Number of provided [`InputSpec`]s.
        actual: usize,
    },
    /// Cipher+cipher addition with different operand scales.
    ScaleMismatch {
        /// The offending op.
        op: ValueId,
        /// Scale of the left operand (bits).
        lhs_bits: Frac,
        /// Scale of the right operand (bits).
        rhs_bits: Frac,
    },
    /// Binary cipher op with different operand levels.
    LevelMismatch {
        /// The offending op.
        op: ValueId,
        /// Level of the left operand.
        lhs: u32,
        /// Level of the right operand.
        rhs: u32,
    },
    /// A ciphertext scale exceeded its coefficient modulus (`m > R^l`).
    Overflow {
        /// The offending value.
        op: ValueId,
        /// Its scale in bits.
        scale_bits: Frac,
        /// Its level.
        level: u32,
    },
    /// A ciphertext scale fell below the waterline.
    BelowWaterline {
        /// The offending value.
        op: ValueId,
        /// Its scale in bits.
        scale_bits: Frac,
    },
    /// `rescale`/`modswitch` at level 1 (no limb left to drop).
    LevelUnderflow {
        /// The offending op.
        op: ValueId,
    },
    /// A value needs a level beyond `params.max_level`.
    ExceedsMaxLevel {
        /// The offending value.
        op: ValueId,
        /// The level it requires.
        level: u32,
    },
    /// Scale management applied to a plaintext value.
    ScaleManagementOnPlain {
        /// The offending op.
        op: ValueId,
    },
    /// `upscale` by a non-positive amount.
    NonPositiveUpscale {
        /// The offending op.
        op: ValueId,
    },
    /// A rotation needed a Galois key the runtime could neither find nor
    /// generate (e.g. an explicit key set that omits a scheduled step).
    MissingKey {
        /// The offending rotation op.
        op: ValueId,
        /// The rotation step whose key was unavailable.
        steps: i64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InputArity { expected, actual } => {
                write!(f, "expected {expected} input specs, got {actual}")
            }
            ScheduleError::ScaleMismatch {
                op,
                lhs_bits,
                rhs_bits,
            } => {
                write!(f, "scale mismatch at {op}: {lhs_bits} vs {rhs_bits} bits")
            }
            ScheduleError::LevelMismatch { op, lhs, rhs } => {
                write!(f, "level mismatch at {op}: {lhs} vs {rhs}")
            }
            ScheduleError::Overflow {
                op,
                scale_bits,
                level,
            } => {
                write!(
                    f,
                    "scale overflow at {op}: {scale_bits} bits exceeds modulus at level {level}"
                )
            }
            ScheduleError::BelowWaterline { op, scale_bits } => {
                write!(f, "scale {scale_bits} bits below waterline at {op}")
            }
            ScheduleError::LevelUnderflow { op } => {
                write!(f, "level underflow (rescale/modswitch at level 1) at {op}")
            }
            ScheduleError::ExceedsMaxLevel { op, level } => {
                write!(f, "value {op} needs level {level} beyond max_level")
            }
            ScheduleError::ScaleManagementOnPlain { op } => {
                write!(f, "scale management op on plaintext value at {op}")
            }
            ScheduleError::NonPositiveUpscale { op } => {
                write!(f, "upscale by a non-positive amount at {op}")
            }
            ScheduleError::MissingKey { op, steps } => {
                write!(f, "missing Galois key for rotation by {steps} at {op}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl ScheduledProgram {
    /// Derives scale/level for every ciphertext value and checks every
    /// RNS-CKKS constraint. Returns the derived map, or **all** violations.
    pub fn validate(&self) -> Result<ScaleMap, Vec<ScheduleError>> {
        let p = &self.program;
        let params = &self.params;
        let mut errors = Vec::new();
        let n = p.num_ops();
        let mut map = ScaleMap {
            scale_bits: vec![None; n],
            level: vec![None; n],
        };

        if self.inputs.len() != p.inputs().len() {
            return Err(vec![ScheduleError::InputArity {
                expected: p.inputs().len(),
                actual: self.inputs.len(),
            }]);
        }

        let waterline = params.waterline();
        let rescale = params.rescale();
        let mut input_iter = self.inputs.iter();

        for id in p.ids() {
            if p.is_plain(id) {
                if p.op(id).is_scale_management() {
                    errors.push(ScheduleError::ScaleManagementOnPlain { op: id });
                }
                continue;
            }
            let cipher = |v: ValueId| -> Option<(Frac, u32)> {
                Some((map.scale_bits[v.index()]?, map.level[v.index()]?))
            };
            // Derive (scale, level); None when an operand failed earlier.
            let derived: Option<(Frac, u32)> = match p.op(id) {
                Op::Input { .. } => {
                    let spec = input_iter.next().expect("input count checked above");
                    Some((spec.scale_bits, spec.level))
                }
                Op::Const { .. } => unreachable!("consts are plain"),
                Op::Add(a, b) | Op::Sub(a, b) => match (p.is_cipher(*a), p.is_cipher(*b)) {
                    (true, true) => match (cipher(*a), cipher(*b)) {
                        (Some((sa, la)), Some((sb, lb))) => {
                            if sa != sb {
                                errors.push(ScheduleError::ScaleMismatch {
                                    op: id,
                                    lhs_bits: sa,
                                    rhs_bits: sb,
                                });
                            }
                            if la != lb {
                                errors.push(ScheduleError::LevelMismatch {
                                    op: id,
                                    lhs: la,
                                    rhs: lb,
                                });
                            }
                            Some((sa, la.min(lb)))
                        }
                        _ => None,
                    },
                    (true, false) => cipher(*a),
                    (false, true) => cipher(*b),
                    (false, false) => unreachable!("plain op handled above"),
                },
                Op::Mul(a, b) => match (p.is_cipher(*a), p.is_cipher(*b)) {
                    (true, true) => match (cipher(*a), cipher(*b)) {
                        (Some((sa, la)), Some((sb, lb))) => {
                            if la != lb {
                                errors.push(ScheduleError::LevelMismatch {
                                    op: id,
                                    lhs: la,
                                    rhs: lb,
                                });
                            }
                            Some((sa + sb, la.min(lb)))
                        }
                        _ => None,
                    },
                    // Cipher×plain: the plaintext is encoded at the waterline
                    // (the PMul rule's ρ₂ = l − ω assumption).
                    (true, false) => cipher(*a).map(|(s, l)| (s + waterline, l)),
                    (false, true) => cipher(*b).map(|(s, l)| (s + waterline, l)),
                    (false, false) => unreachable!("plain op handled above"),
                },
                Op::Neg(a) | Op::Rotate(a, _) => cipher(*a),
                Op::Rescale(a) => cipher(*a).and_then(|(s, l)| {
                    if l < 2 {
                        errors.push(ScheduleError::LevelUnderflow { op: id });
                        return None;
                    }
                    Some((s - rescale, l - 1))
                }),
                Op::ModSwitch(a) => cipher(*a).and_then(|(s, l)| {
                    if l < 2 {
                        errors.push(ScheduleError::LevelUnderflow { op: id });
                        return None;
                    }
                    Some((s, l - 1))
                }),
                Op::Upscale(a, delta) => {
                    if *delta <= Frac::ZERO {
                        errors.push(ScheduleError::NonPositiveUpscale { op: id });
                    }
                    cipher(*a).map(|(s, l)| (s + *delta, l))
                }
            };

            if let Some((scale, level)) = derived {
                if scale < waterline {
                    errors.push(ScheduleError::BelowWaterline {
                        op: id,
                        scale_bits: scale,
                    });
                }
                if scale > Frac::from(level) * rescale {
                    errors.push(ScheduleError::Overflow {
                        op: id,
                        scale_bits: scale,
                        level,
                    });
                }
                if level > params.max_level {
                    errors.push(ScheduleError::ExceedsMaxLevel { op: id, level });
                }
                map.scale_bits[id.index()] = Some(scale);
                map.level[id.index()] = Some(level);
            }
        }

        if errors.is_empty() {
            Ok(map)
        } else {
            Err(errors)
        }
    }

    /// The modulus level fresh encryptions need (max level of any value).
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not validate.
    pub fn modulus_level(&self) -> u32 {
        self.validate().expect("schedule must validate").max_level()
    }

    /// Number of scale-management ops the compiler inserted, by kind:
    /// `(rescale, modswitch, upscale)`.
    pub fn scale_management_counts(&self) -> (usize, usize, usize) {
        let p = &self.program;
        (
            p.count_ops(|o| matches!(o, Op::Rescale(_))),
            p.count_ops(|o| matches!(o, Op::ModSwitch(_))),
            p.count_ops(|o| matches!(o, Op::Upscale(..))),
        )
    }
}

/// Incremental FNV-1a (64-bit) over a byte stream: tiny, deterministic
/// across platforms, and dependency-free. Collisions are harmless in the
/// serve compile cache (the full key is compared on lookup); the hash is a
/// cheap fingerprint for bucketing and structural-identity assertions.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn i128(&mut self, v: i128) {
        self.write(&v.to_le_bytes());
    }

    fn frac(&mut self, v: Frac) {
        self.i128(v.numer());
        self.i128(v.denom());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.write(s.as_bytes());
    }
}

impl Program {
    /// A 64-bit content hash of the program *structure*: slot count, op
    /// kinds, operand wiring, rotation steps, upscale deltas, constant bit
    /// patterns, input names, and the output list. The program name is
    /// deliberately ignored — two programs that compute the same DAG hash
    /// equal regardless of what they are called.
    ///
    /// Two programs with equal [`text::print`](crate::text::print) output
    /// hash equal; the converse holds up to FNV collisions.
    pub fn structural_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.slots() as u64);
        h.u64(self.num_ops() as u64);
        for id in self.ids() {
            match self.op(id) {
                Op::Input { name } => {
                    h.u64(0);
                    h.str(name);
                }
                Op::Const { value } => {
                    h.u64(1);
                    match value {
                        crate::ConstValue::Scalar(v) => {
                            h.u64(0);
                            h.u64(v.to_bits());
                        }
                        crate::ConstValue::Vector(v) => {
                            h.u64(1);
                            h.u64(v.len() as u64);
                            for x in v.iter() {
                                h.u64(x.to_bits());
                            }
                        }
                    }
                }
                Op::Add(a, b) => {
                    h.u64(2);
                    h.u64(a.0 as u64);
                    h.u64(b.0 as u64);
                }
                Op::Sub(a, b) => {
                    h.u64(3);
                    h.u64(a.0 as u64);
                    h.u64(b.0 as u64);
                }
                Op::Mul(a, b) => {
                    h.u64(4);
                    h.u64(a.0 as u64);
                    h.u64(b.0 as u64);
                }
                Op::Neg(a) => {
                    h.u64(5);
                    h.u64(a.0 as u64);
                }
                Op::Rotate(a, k) => {
                    h.u64(6);
                    h.u64(a.0 as u64);
                    h.i128(*k as i128);
                }
                Op::Rescale(a) => {
                    h.u64(7);
                    h.u64(a.0 as u64);
                }
                Op::ModSwitch(a) => {
                    h.u64(8);
                    h.u64(a.0 as u64);
                }
                Op::Upscale(a, d) => {
                    h.u64(9);
                    h.u64(a.0 as u64);
                    h.frac(*d);
                }
            }
        }
        h.u64(self.outputs().len() as u64);
        for &o in self.outputs() {
            h.u64(o.0 as u64);
        }
        h.0
    }
}

impl ScheduledProgram {
    /// A 64-bit content hash of the *schedule*: the
    /// [structural program hash](Program::structural_hash) combined with the
    /// compile parameters and every input's scale/level assignment. Two
    /// schedules with equal hashes execute identically (up to FNV
    /// collisions); the serve-layer compile cache uses this to assert that
    /// an evicted-and-recompiled entry is structurally identical to the
    /// original.
    pub fn structural_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.program.structural_hash());
        h.u64(self.params.rescale_bits as u64);
        h.u64(self.params.waterline_bits as u64);
        h.u64(self.params.max_level as u64);
        h.u64(self.params.output_reserve_bits as u64);
        h.u64(self.inputs.len() as u64);
        for spec in &self.inputs {
            h.frac(spec.scale_bits);
            h.u64(spec.level as u64);
        }
        h.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    /// EVA's plan for Fig. 2b: inputs at scale 20, level 2; upscale y by 20;
    /// rescale after the final mul.
    fn fig2b() -> ScheduledProgram {
        let params = CompileParams::new(20);
        let mut p = Program::new("fig2b", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let x2 = p.push(Op::Mul(x, x));
        let x3 = p.push(Op::Mul(x, x2));
        let y2 = p.push(Op::Mul(y, y));
        let yup = p.push(Op::Upscale(y, Frac::from(20)));
        let s = p.push(Op::Add(y2, yup));
        let q = p.push(Op::Mul(x3, s));
        let qr = p.push(Op::Rescale(q));
        p.set_outputs(vec![qr]);
        let spec = InputSpec {
            scale_bits: Frac::from(20),
            level: 2,
        };
        ScheduledProgram {
            program: p,
            params,
            inputs: vec![spec, spec],
        }
    }

    #[test]
    fn eva_plan_for_fig2b_validates() {
        let s = fig2b();
        let map = s.validate().expect("EVA's Fig. 2b plan is legal");
        // q = x³·s has scale 60+40 = 100 at level 2 (Fig. 2b), rescaled to 40.
        let q = ValueId(7);
        assert_eq!(map.scale_bits(q), Frac::from(100));
        assert_eq!(map.level(q), 2);
        let qr = ValueId(8);
        assert_eq!(map.scale_bits(qr), Frac::from(40));
        assert_eq!(map.level(qr), 1);
        assert_eq!(map.max_level(), 2);
        assert_eq!(s.scale_management_counts(), (1, 0, 1));
    }

    #[test]
    fn underscaled_inputs_overflow() {
        let mut s = fig2b();
        // Encrypt at level 1: x³·s needs 100 bits > 60.
        for spec in &mut s.inputs {
            spec.level = 1;
        }
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ScheduleError::Overflow { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ScheduleError::LevelUnderflow { .. })));
    }

    #[test]
    fn scale_mismatch_detected() {
        let params = CompileParams::new(20);
        let mut p = Program::new("bad", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let a = p.push(Op::Add(x, y));
        p.set_outputs(vec![a]);
        let s = ScheduledProgram {
            program: p,
            params,
            inputs: vec![
                InputSpec {
                    scale_bits: Frac::from(20),
                    level: 1,
                },
                InputSpec {
                    scale_bits: Frac::from(30),
                    level: 1,
                },
            ],
        };
        let errs = s.validate().unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], ScheduleError::ScaleMismatch { .. }));
    }

    #[test]
    fn level_mismatch_detected() {
        let params = CompileParams::new(20);
        let mut p = Program::new("bad", 8);
        let x = p.push(Op::Input { name: "x".into() });
        let y = p.push(Op::Input { name: "y".into() });
        let m = p.push(Op::Mul(x, y));
        p.set_outputs(vec![m]);
        let s = ScheduledProgram {
            program: p,
            params,
            inputs: vec![
                InputSpec {
                    scale_bits: Frac::from(20),
                    level: 2,
                },
                InputSpec {
                    scale_bits: Frac::from(20),
                    level: 1,
                },
            ],
        };
        let errs = s.validate().unwrap_err();
        assert!(matches!(errs[0], ScheduleError::LevelMismatch { .. }));
    }

    #[test]
    fn waterline_violation_detected() {
        let params = CompileParams::new(20);
        let b = Builder::new("w", 4);
        let x = b.input("x");
        let p = b.finish(vec![x]);
        let s = ScheduledProgram {
            program: p,
            params,
            inputs: vec![InputSpec {
                scale_bits: Frac::from(10),
                level: 1,
            }],
        };
        let errs = s.validate().unwrap_err();
        assert!(matches!(errs[0], ScheduleError::BelowWaterline { .. }));
    }

    #[test]
    fn rescale_below_waterline_detected() {
        let params = CompileParams::new(20);
        let mut p = Program::new("r", 4);
        let x = p.push(Op::Input { name: "x".into() });
        let r = p.push(Op::Rescale(x));
        p.set_outputs(vec![r]);
        // 70 − 60 = 10 < 20.
        let s = ScheduledProgram {
            program: p,
            params,
            inputs: vec![InputSpec {
                scale_bits: Frac::from(70),
                level: 2,
            }],
        };
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ScheduleError::BelowWaterline { .. })));
    }

    #[test]
    fn cipher_plain_mul_adds_waterline() {
        let params = CompileParams::new(20);
        let b = Builder::new("pm", 4);
        let x = b.input("x");
        let c = b.constant(0.5);
        let m = x * c;
        let p = b.finish(vec![m]);
        let s = ScheduledProgram {
            program: p,
            params,
            inputs: vec![InputSpec {
                scale_bits: Frac::from(20),
                level: 1,
            }],
        };
        let map = s.validate().unwrap();
        assert_eq!(map.scale_bits(ValueId(2)), Frac::from(40));
        assert_eq!(map.level(ValueId(2)), 1);
    }

    #[test]
    fn plain_values_have_no_scale() {
        let params = CompileParams::new(20);
        let b = Builder::new("pp", 4);
        let c = b.constant(1.0);
        let d = b.constant(2.0);
        let x = b.input("x");
        let m = c * d + x;
        let p = b.finish(vec![m]);
        let s = ScheduledProgram {
            program: p,
            params,
            inputs: vec![InputSpec {
                scale_bits: Frac::from(20),
                level: 1,
            }],
        };
        let map = s.validate().unwrap();
        assert_eq!(map.try_scale_bits(ValueId(0)), None);
        // c·d is still plain; the cipher add (id 4) has a scale.
        assert_eq!(map.try_scale_bits(ValueId(3)), None);
        assert!(map.try_scale_bits(ValueId(4)).is_some());
    }

    #[test]
    fn input_arity_checked() {
        let params = CompileParams::new(20);
        let b = Builder::new("a", 4);
        let x = b.input("x");
        let p = b.finish(vec![x]);
        let s = ScheduledProgram {
            program: p,
            params,
            inputs: vec![],
        };
        let errs = s.validate().unwrap_err();
        assert!(matches!(
            errs[0],
            ScheduleError::InputArity {
                expected: 1,
                actual: 0
            }
        ));
    }

    #[test]
    fn structural_hash_ignores_name_but_not_structure() {
        let a = fig2b();
        let mut b = fig2b();
        assert_eq!(a.structural_hash(), b.structural_hash());

        // Renaming the program does not change the hash.
        let mut renamed = Program::new("other-name", a.program.slots());
        for id in a.program.ids() {
            renamed.push(a.program.op(id).clone());
        }
        renamed.set_outputs(a.program.outputs().to_vec());
        assert_eq!(a.program.structural_hash(), renamed.structural_hash());

        // Changing an input level changes the schedule hash.
        b.inputs[0].level = 3;
        assert_ne!(a.structural_hash(), b.structural_hash());

        // Changing params changes the schedule hash.
        let mut c = fig2b();
        c.params.waterline_bits = 21;
        assert_ne!(a.structural_hash(), c.structural_hash());

        // Changing a rotation step or a constant changes the program hash.
        let mut p1 = Program::new("r", 8);
        let x1 = p1.push(Op::Input { name: "x".into() });
        p1.push(Op::Rotate(x1, 1));
        let mut p2 = Program::new("r", 8);
        let x2 = p2.push(Op::Input { name: "x".into() });
        p2.push(Op::Rotate(x2, 2));
        assert_ne!(p1.structural_hash(), p2.structural_hash());
    }
}
